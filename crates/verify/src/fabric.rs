//! Map/CGRA checker passes: netlist well-formedness, placement
//! legality (tile compatibility, slot capacity), routing validity
//! (connected paths on real tracks, per-track capacity), and bitstream
//! encodability (field ranges, faithful round-trip).

use crate::Violation;
use apex_cgra::{
    connections, pack_config, place_class, unpack_config, Bitstream, Fabric, PlaceClass,
    Placement, Routing, TileConfig, TileId, TileKind,
};
use apex_map::{NetKind, Netlist};
use apex_merge::MergedDatapath;
use apex_rewrite::RuleSet;
use std::collections::{BTreeMap, BTreeSet};
use std::mem::discriminant;

fn tile_str(fabric: &Fabric, t: TileId) -> String {
    if (t.0 as usize) < fabric.len() {
        let (r, c) = fabric.coords(t);
        format!("tile ({r},{c})")
    } else {
        format!("tile #{} (out of range)", t.0)
    }
}

/// Verifies a mapped netlist against its ruleset.
///
/// Rules:
/// * `MAP-NETLIST` — the netlist fails [`Netlist::validate`] (dangling
///   references, arity/type mismatches, cycles, unknown rules).
pub fn verify_netlist(netlist: &Netlist, rules: &RuleSet) -> Vec<Violation> {
    match netlist.validate(rules) {
        Ok(()) => Vec::new(),
        Err(e) => vec![Violation::new(
            "MAP-NETLIST",
            format!("netlist '{}'", netlist.name),
            "nodes",
            e.to_string(),
        )],
    }
}

/// Verifies a placement of a netlist onto a fabric.
///
/// Rules:
/// * `PLACE-LEN` — the placement vector does not cover every netlist
///   node,
/// * `PLACE-MISSING` — a placeable node has no tile,
/// * `PLACE-SPURIOUS` — an interconnect register was given a tile,
/// * `PLACE-CLASS` — a node sits on a tile of the wrong kind (or an
///   out-of-range tile),
/// * `PLACE-CAP` — more nodes of one class on a tile than it has slots
///   (PE and RF slots: 1 per PE tile; memory and I/O slots: 2 per tile).
pub fn verify_placement(
    netlist: &Netlist,
    fabric: &Fabric,
    placement: &Placement,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let artifact = format!("placement of '{}'", netlist.name);
    if placement.tile_of_node.len() != netlist.nodes.len() {
        out.push(Violation::new(
            "PLACE-LEN",
            &artifact,
            "tile_of_node",
            format!(
                "placement covers {} node(s), netlist has {}",
                placement.tile_of_node.len(),
                netlist.nodes.len()
            ),
        ));
        return out;
    }
    let mut load: BTreeMap<(TileId, PlaceClass), usize> = BTreeMap::new();
    for (i, node) in netlist.nodes.iter().enumerate() {
        let class = place_class(&node.kind);
        let tile = placement.tile_of_node[i];
        match (class, tile) {
            (Some(class), None) => {
                out.push(Violation::new(
                    "PLACE-MISSING",
                    &artifact,
                    format!("node {i}"),
                    format!("{class:?} node has no tile"),
                ));
            }
            (None, Some(t)) => {
                out.push(Violation::new(
                    "PLACE-SPURIOUS",
                    &artifact,
                    format!("node {i}"),
                    format!(
                        "interconnect register placed on {} (registers live in switch boxes)",
                        tile_str(fabric, t)
                    ),
                ));
            }
            (Some(class), Some(t)) => {
                let want = match class {
                    PlaceClass::PeSlot | PlaceClass::RfSlot => TileKind::Pe,
                    PlaceClass::MemSlot => TileKind::Mem,
                    PlaceClass::IoSlot => TileKind::Io,
                };
                if (t.0 as usize) >= fabric.len() || fabric.kind(t) != want {
                    out.push(Violation::new(
                        "PLACE-CLASS",
                        &artifact,
                        format!("node {i}"),
                        format!(
                            "{class:?} node on {}, needs a {want:?} tile",
                            tile_str(fabric, t)
                        ),
                    ));
                } else {
                    *load.entry((t, class)).or_insert(0) += 1;
                }
            }
            (None, None) => {}
        }
    }
    for ((t, class), n) in load {
        let cap = match class {
            PlaceClass::PeSlot | PlaceClass::RfSlot => 1,
            PlaceClass::MemSlot | PlaceClass::IoSlot => 2,
        };
        if n > cap {
            out.push(Violation::new(
                "PLACE-CAP",
                &artifact,
                tile_str(fabric, t),
                format!("{n} {class:?} node(s) on a tile with {cap} slot(s)"),
            ));
        }
    }
    out
}

/// Verifies a routing solution against the placement it serves.
///
/// Rules:
/// * `ROUTE-COUNT` — the number of routes disagrees with the netlist's
///   connection list,
/// * `ROUTE-CONN` — a route does not correspond to any required
///   connection (wrong endpoints, slot, signal kind, or register count),
/// * `ROUTE-ENDPOINT` — a route's endpoints are unplaced, or its path
///   does not start/end at the placed tiles,
/// * `ROUTE-PATH` — adjacent path tiles are not fabric neighbours (the
///   route uses tracks that do not exist),
/// * `ROUTE-CAP` — more distinct signals on one directed link than it
///   has tracks of that kind,
/// * `ROUTE-INC` — a route's path visits the same tile twice (a cycle:
///   shortest-path trees cannot produce one, so a loop marks a corrupt
///   or hand-edited artifact — e.g. a botched incremental rip-up).
pub fn verify_routing(
    netlist: &Netlist,
    rules: &RuleSet,
    fabric: &Fabric,
    placement: &Placement,
    routing: &Routing,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let artifact = format!("routing of '{}'", netlist.name);
    let conns = connections(netlist, rules);
    if routing.routes.len() != conns.len() {
        out.push(Violation::new(
            "ROUTE-COUNT",
            &artifact,
            "routes",
            format!(
                "{} route(s) for {} required connection(s)",
                routing.routes.len(),
                conns.len()
            ),
        ));
    }
    let required: std::collections::BTreeSet<_> = conns
        .iter()
        .map(|&(c, s, p, regs, w)| (c, s, p, regs, w))
        .collect();
    let mut usage: BTreeMap<(usize, bool), std::collections::BTreeSet<u32>> = BTreeMap::new();
    for (ri, r) in routing.routes.iter().enumerate() {
        let loc = format!("route[{ri}] node {} slot {}", r.consumer, r.slot);
        if !required.contains(&(r.consumer, r.slot, r.producer, r.regs, r.word)) {
            out.push(Violation::new(
                "ROUTE-CONN",
                &artifact,
                loc.clone(),
                format!(
                    "no required connection ({} -> {} slot {}, {} reg(s), word={})",
                    r.producer, r.consumer, r.slot, r.regs, r.word
                ),
            ));
        }
        let src = placement
            .tile_of_node
            .get(r.producer as usize)
            .copied()
            .flatten();
        let dst = placement
            .tile_of_node
            .get(r.consumer as usize)
            .copied()
            .flatten();
        match (src, dst) {
            (Some(src), Some(dst)) => {
                if r.path.first() != Some(&src) || r.path.last() != Some(&dst) {
                    out.push(Violation::new(
                        "ROUTE-ENDPOINT",
                        &artifact,
                        loc.clone(),
                        format!(
                            "path {:?}..{:?} does not span {} -> {}",
                            r.path.first(),
                            r.path.last(),
                            tile_str(fabric, src),
                            tile_str(fabric, dst)
                        ),
                    ));
                }
            }
            _ => {
                out.push(Violation::new(
                    "ROUTE-ENDPOINT",
                    &artifact,
                    loc.clone(),
                    "route endpoint is not a placed node".to_owned(),
                ));
                continue;
            }
        }
        for (h, w) in r.path.windows(2).enumerate() {
            if (w[0].0 as usize) >= fabric.len()
                || (w[1].0 as usize) >= fabric.len()
                || fabric.distance(w[0], w[1]) != 1
            {
                out.push(Violation::new(
                    "ROUTE-PATH",
                    &artifact,
                    format!("{loc} hop {h}"),
                    format!(
                        "{} and {} are not fabric neighbours",
                        tile_str(fabric, w[0]),
                        tile_str(fabric, w[1])
                    ),
                ));
            } else {
                usage
                    .entry((fabric.link(w[0], w[1]), r.word))
                    .or_default()
                    .insert(r.producer);
            }
        }
        let mut seen: BTreeSet<TileId> = BTreeSet::new();
        for (h, t) in r.path.iter().enumerate() {
            if !seen.insert(*t) {
                out.push(Violation::new(
                    "ROUTE-INC",
                    &artifact,
                    format!("{loc} hop {h}"),
                    format!("path revisits {} (routes must be simple)", tile_str(fabric, *t)),
                ));
                break;
            }
        }
    }
    for ((link, word), signals) in usage {
        let cap = if word {
            fabric.config.word_tracks
        } else {
            fabric.config.bit_tracks
        };
        if signals.len() > cap {
            let (from, to) = (link / fabric.len(), link % fabric.len());
            out.push(Violation::new(
                "ROUTE-CAP",
                &artifact,
                format!(
                    "link {} -> {}",
                    tile_str(fabric, TileId(from as u32)),
                    tile_str(fabric, TileId(to as u32))
                ),
                format!(
                    "{} distinct {} signal(s) on {cap} track(s)",
                    signals.len(),
                    if word { "word" } else { "bit" }
                ),
            ));
        }
    }
    out
}

/// Verifies a generated bitstream against the design it encodes.
///
/// Rules:
/// * `BITS-PE` — a placed PE instance's tile carries no (or a wrong) PE
///   configuration, or the total PE-config count disagrees with the
///   netlist,
/// * `BITS-PAYLOAD` — an instance's payloads do not satisfy its rule's
///   binding contract (count, payload kind, bound register active),
/// * `BITS-ROUNDTRIP` — decode(encode(config)) is not the identity,
/// * `BITS-SB` — a routed hop has no crossing recorded in its switch
///   box,
/// * `BITS-TRACK` — a crossing's track index exceeds the link's track
///   capacity.
pub fn verify_bitstream(
    netlist: &Netlist,
    rules: &RuleSet,
    dp: &MergedDatapath,
    fabric: &Fabric,
    placement: &Placement,
    routing: &Routing,
    bs: &Bitstream,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let artifact = format!("bitstream of '{}'", netlist.name);

    // --- PE configurations ----------------------------------------------
    let mut pe_cfg_expected = 0usize;
    for (i, node) in netlist.nodes.iter().enumerate() {
        let NetKind::Pe(inst) = &node.kind else { continue };
        let Some(tile) = placement.tile_of_node.get(i).copied().flatten() else {
            continue; // PLACE-MISSING territory
        };
        let Some(rule) = rules.rules.get(inst.rule as usize) else {
            continue; // MAP-NETLIST territory
        };
        pe_cfg_expected += 1;
        let loc = format!("node {i} on {}", tile_str(fabric, tile));

        // payload contract must hold before instantiate() may run
        let mut payload_ok = inst.payloads.len() == rule.payload_bindings.len();
        if payload_ok {
            for (payload, (_, dpn)) in inst.payloads.iter().zip(&rule.payload_bindings) {
                match rule.config.node_cfg.get(*dpn as usize) {
                    Some(Some(nc)) if discriminant(&nc.op) == discriminant(payload) => {}
                    _ => {
                        payload_ok = false;
                        break;
                    }
                }
            }
        }
        if !payload_ok {
            out.push(Violation::new(
                "BITS-PAYLOAD",
                &artifact,
                loc,
                format!(
                    "{} payload(s) do not satisfy rule '{}' bindings ({})",
                    inst.payloads.len(),
                    rule.name,
                    rule.payload_bindings.len()
                ),
            ));
            continue;
        }
        let cfg = rule.instantiate(&inst.payloads);
        let packed = pack_config(dp, &cfg);
        let stored = bs.tiles.get(&tile).into_iter().flatten().find_map(|t| {
            if let TileConfig::Pe { bits } = t {
                Some(bits)
            } else {
                None
            }
        });
        match stored {
            None => {
                out.push(Violation::new(
                    "BITS-PE",
                    &artifact,
                    loc,
                    "placed PE instance has no PE configuration in the bitstream".to_owned(),
                ));
                continue;
            }
            Some(bits) if *bits != packed => {
                out.push(Violation::new(
                    "BITS-PE",
                    &artifact,
                    loc,
                    "stored PE configuration bits differ from the instance's packed config"
                        .to_owned(),
                ));
                continue;
            }
            Some(_) => {}
        }
        let decoded = unpack_config(dp, &packed, &cfg);
        if decoded != cfg {
            out.push(Violation::new(
                "BITS-ROUNDTRIP",
                &artifact,
                loc,
                "decode(encode(config)) is not the identity".to_owned(),
            ));
        }
    }
    let pe_cfg_total = bs
        .tiles
        .values()
        .flatten()
        .filter(|t| matches!(t, TileConfig::Pe { .. }))
        .count();
    if pe_cfg_total != pe_cfg_expected {
        out.push(Violation::new(
            "BITS-PE",
            &artifact,
            "tiles",
            format!("{pe_cfg_total} PE configuration(s) for {pe_cfg_expected} placed instance(s)"),
        ));
    }

    // --- switch-box crossings -------------------------------------------
    // which signal kinds traverse each directed hop, per the routing
    let mut hop_kinds: BTreeMap<(TileId, TileId), (bool, bool)> = BTreeMap::new();
    for r in &routing.routes {
        for w in r.path.windows(2) {
            let e = hop_kinds.entry((w[0], w[1])).or_insert((false, false));
            if r.word {
                e.0 = true;
            } else {
                e.1 = true;
            }
        }
    }
    for (&(from, to), &(has_word, has_bit)) in &hop_kinds {
        let crossings = bs.tiles.get(&from).into_iter().flatten().find_map(|t| {
            if let TileConfig::Sb { crossings } = t {
                Some(crossings.as_slice())
            } else {
                None
            }
        });
        let hop_str = || {
            format!(
                "{} -> {}",
                tile_str(fabric, from),
                tile_str(fabric, to)
            )
        };
        let Some(found) = crossings.map(|cs| cs.iter().any(|&(f, t, _)| f == from && t == to))
        else {
            out.push(Violation::new(
                "BITS-SB",
                &artifact,
                hop_str(),
                "routed hop's switch box has no crossing list".to_owned(),
            ));
            continue;
        };
        if !found {
            out.push(Violation::new(
                "BITS-SB",
                &artifact,
                hop_str(),
                "routed hop has no crossing recorded in its switch box".to_owned(),
            ));
        }
        // track indices must be encodable on the link's own track kind
        let cap = match (has_word, has_bit) {
            (true, false) => fabric.config.word_tracks,
            (false, true) => fabric.config.bit_tracks,
            _ => fabric.config.word_tracks.max(fabric.config.bit_tracks),
        };
        for &(f, t, track) in crossings.unwrap_or(&[]) {
            if f == from && t == to && (track as usize) >= cap {
                out.push(Violation::new(
                    "BITS-TRACK",
                    &artifact,
                    hop_str(),
                    format!("crossing uses track {track}, link has {cap}"),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_cgra::{
        generate_bitstream, place, route, FabricConfig, PlaceOptions, RouteOptions,
    };
    use apex_map::map_application;
    use apex_pe::baseline_pe;
    use apex_rewrite::standard_ruleset;

    struct Design {
        netlist: Netlist,
        rules: RuleSet,
        dp: MergedDatapath,
        fabric: Fabric,
        placement: Placement,
        routing: Routing,
        bs: Bitstream,
    }

    fn small_design() -> Design {
        let app = apex_apps::gaussian();
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app.graph]).expect("ruleset");
        let d = map_application(&app.graph, &pe.datapath, &rules).expect("maps");
        let fabric = Fabric::new(FabricConfig::default());
        let placement = place(&d.netlist, &fabric, &PlaceOptions::default()).expect("places");
        let routing = route(&d.netlist, &rules, &fabric, &placement, &RouteOptions::default())
            .expect("routes");
        let bs = generate_bitstream(&d.netlist, &rules, &pe.datapath, &fabric, &placement, &routing);
        Design {
            netlist: d.netlist,
            rules,
            dp: pe.datapath,
            fabric,
            placement,
            routing,
            bs,
        }
    }

    #[test]
    fn honest_backend_artifacts_are_clean() {
        let d = small_design();
        let vs = verify_netlist(&d.netlist, &d.rules);
        assert!(vs.is_empty(), "{}", crate::render(&vs));
        let vs = verify_placement(&d.netlist, &d.fabric, &d.placement);
        assert!(vs.is_empty(), "{}", crate::render(&vs));
        let vs = verify_routing(&d.netlist, &d.rules, &d.fabric, &d.placement, &d.routing);
        assert!(vs.is_empty(), "{}", crate::render(&vs));
        let vs = verify_bitstream(
            &d.netlist, &d.rules, &d.dp, &d.fabric, &d.placement, &d.routing, &d.bs,
        );
        assert!(vs.is_empty(), "{}", crate::render(&vs));
    }

    #[test]
    fn wrong_tile_kind_is_caught() {
        let mut d = small_design();
        let pe_node = d
            .netlist
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NetKind::Pe(_)))
            .expect("a PE exists");
        let io_tile = d.fabric.tiles_of(TileKind::Io)[0];
        d.placement.tile_of_node[pe_node] = Some(io_tile);
        let vs = verify_placement(&d.netlist, &d.fabric, &d.placement);
        assert!(vs.iter().any(|v| v.rule == "PLACE-CLASS"), "{}", crate::render(&vs));
    }

    #[test]
    fn doubled_pe_slot_is_caught() {
        let mut d = small_design();
        let pes: Vec<usize> = d
            .netlist
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NetKind::Pe(_)))
            .map(|(i, _)| i)
            .collect();
        assert!(pes.len() >= 2);
        d.placement.tile_of_node[pes[1]] = d.placement.tile_of_node[pes[0]];
        let vs = verify_placement(&d.netlist, &d.fabric, &d.placement);
        assert!(vs.iter().any(|v| v.rule == "PLACE-CAP"), "{}", crate::render(&vs));
    }

    #[test]
    fn teleporting_route_is_caught() {
        let mut d = small_design();
        let r = d
            .routing
            .routes
            .iter_mut()
            .find(|r| r.path.len() >= 3)
            .expect("a multi-hop route exists");
        r.path.remove(1); // skip a tile: adjacent hops now distance 2
        let vs = verify_routing(&d.netlist, &d.rules, &d.fabric, &d.placement, &d.routing);
        assert!(vs.iter().any(|v| v.rule == "ROUTE-PATH"), "{}", crate::render(&vs));
    }

    #[test]
    fn looping_route_is_caught() {
        let mut d = small_design();
        let fabric = d.fabric.clone();
        let r = d
            .routing
            .routes
            .iter_mut()
            .find(|r| r.path.len() >= 2)
            .expect("a multi-hop route exists");
        // splice a detour that immediately returns: a -> n -> a. Every
        // window stays a fabric-neighbour pair, so only ROUTE-INC fires.
        let a = r.path[0];
        let n = fabric
            .neighbours(a)
            .into_iter()
            .find(|n| r.path.get(1) != Some(n))
            .expect("tile has a spare neighbour");
        r.path.insert(1, a);
        r.path.insert(1, n);
        let vs = verify_routing(&d.netlist, &d.rules, &d.fabric, &d.placement, &d.routing);
        assert!(vs.iter().any(|v| v.rule == "ROUTE-INC"), "{}", crate::render(&vs));
        assert!(
            !vs.iter().any(|v| v.rule == "ROUTE-PATH"),
            "loop detour must keep hops adjacent: {}",
            crate::render(&vs)
        );
    }

    #[test]
    fn dropped_route_is_caught() {
        let mut d = small_design();
        d.routing.routes.pop();
        let vs = verify_routing(&d.netlist, &d.rules, &d.fabric, &d.placement, &d.routing);
        assert!(vs.iter().any(|v| v.rule == "ROUTE-COUNT"), "{}", crate::render(&vs));
    }

    #[test]
    fn missing_sb_crossing_is_caught() {
        let mut d = small_design();
        let sb_tile = d
            .bs
            .tiles
            .iter()
            .find(|(_, cfgs)| cfgs.iter().any(|c| matches!(c, TileConfig::Sb { .. })))
            .map(|(t, _)| *t)
            .expect("a switch box is configured");
        if let Some(cfgs) = d.bs.tiles.get_mut(&sb_tile) {
            for c in cfgs.iter_mut() {
                if let TileConfig::Sb { crossings } = c {
                    crossings.clear();
                }
            }
        }
        let vs = verify_bitstream(
            &d.netlist, &d.rules, &d.dp, &d.fabric, &d.placement, &d.routing, &d.bs,
        );
        assert!(vs.iter().any(|v| v.rule == "BITS-SB"), "{}", crate::render(&vs));
    }

    #[test]
    fn out_of_range_track_is_caught() {
        let mut d = small_design();
        let mut poisoned = false;
        for cfgs in d.bs.tiles.values_mut() {
            for c in cfgs.iter_mut() {
                if let TileConfig::Sb { crossings } = c {
                    if let Some(first) = crossings.first_mut() {
                        first.2 = 200;
                        poisoned = true;
                        break;
                    }
                }
            }
            if poisoned {
                break;
            }
        }
        assert!(poisoned);
        let vs = verify_bitstream(
            &d.netlist, &d.rules, &d.dp, &d.fabric, &d.placement, &d.routing, &d.bs,
        );
        assert!(vs.iter().any(|v| v.rule == "BITS-TRACK"), "{}", crate::render(&vs));
    }
}
