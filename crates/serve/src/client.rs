//! A minimal blocking client for the serve protocol — enough for the
//! `apex submit` CLI, the CI smoke test, and the soak tests.

use crate::proto::{self, Fields};
use apex_fault::{ApexError, Stage};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

fn cli_err(msg: impl Into<String>) -> ApexError {
    ApexError::new(Stage::Cli, msg)
}

/// Connects with a timeout (resolving `addr` first).
///
/// # Errors
/// Resolution or connection failures.
fn connect(addr: &str, timeout: Duration) -> Result<TcpStream, ApexError> {
    let resolved = addr
        .to_socket_addrs()
        .map_err(|e| cli_err(format!("cannot resolve {addr}: {e}")))?
        .next()
        .ok_or_else(|| cli_err(format!("{addr} resolves to nothing")))?;
    let stream = TcpStream::connect_timeout(&resolved, timeout)
        .map_err(|e| cli_err(format!("cannot connect to {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| cli_err(format!("cannot set socket timeouts: {e}")))?;
    Ok(stream)
}

/// Writes one request line. Under the `serve::slow_client` failpoint the
/// bytes trickle out one at a time with a pause — the canonical
/// malicious-client simulation the server's idle timeout must defeat.
fn send_line(stream: &mut TcpStream, line: &str) -> Result<(), ApexError> {
    let io = |e: std::io::Error| cli_err(format!("send failed: {e}"));
    #[cfg(feature = "fault-injection")]
    if apex_fault::failpoints::is_armed("serve::slow_client") {
        for b in line.as_bytes() {
            stream.write_all(std::slice::from_ref(b)).map_err(io)?;
            stream.flush().map_err(io)?;
            std::thread::sleep(Duration::from_millis(250));
        }
        stream.write_all(b"\n").map_err(io)?;
        return stream.flush().map_err(io);
    }
    stream.write_all(line.as_bytes()).map_err(io)?;
    stream.write_all(b"\n").map_err(io)?;
    stream.flush().map_err(io)
}

/// Reads one newline-terminated response line (bounded by the protocol
/// line cap — the server is trusted more than a client, but not
/// infinitely).
fn read_line(stream: &mut TcpStream) -> Result<String, ApexError> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return Err(cli_err(
                    "server closed the connection (idle timeout or drain?)",
                ))
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    return Ok(String::from_utf8_lossy(&buf).into_owned());
                }
                buf.push(byte[0]);
                if buf.len() > proto::MAX_LINE_BYTES {
                    return Err(cli_err("oversized response line"));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(cli_err(format!("read failed: {e}"))),
        }
    }
}

/// One request/response round trip on a fresh connection.
///
/// # Errors
/// Connection, I/O, or response-decoding failures. A protocol-level
/// error (`{"err":...}`) is returned as `Ok` — the caller decides
/// whether `overloaded` is fatal or a retry.
pub fn request(addr: &str, line: &str, timeout: Duration) -> Result<Fields, ApexError> {
    let mut stream = connect(addr, timeout)?;
    send_line(&mut stream, line)?;
    let response = read_line(&mut stream)?;
    proto::decode(&response).ok_or_else(|| cli_err(format!("undecodable response: {response}")))
}

/// Submits a graph and polls until it concludes (honoring `overloaded`
/// backpressure by sleeping the server's `retry_after_ms` hint).
/// Returns the final `result` (or `job_failed`) response fields.
///
/// # Errors
/// Transport failures, a shed submission that never clears within
/// `overall`, or the overall timeout expiring first.
pub fn submit_and_wait(
    addr: &str,
    tenant: &str,
    graph: &str,
    deadline_ms: Option<u64>,
    overall: Duration,
) -> Result<Fields, ApexError> {
    let started = Instant::now();
    let io_timeout = Duration::from_secs(10);
    let mut fields = proto::Fields::new();
    fields.insert("op".to_owned(), "submit".to_owned());
    fields.insert("graph".to_owned(), graph.to_owned());
    if !tenant.is_empty() {
        fields.insert("tenant".to_owned(), tenant.to_owned());
    }
    if let Some(ms) = deadline_ms {
        fields.insert("deadline_ms".to_owned(), ms.to_string());
    }
    let submit_line = proto::encode(&fields);

    // admission, retrying through backpressure
    let job = loop {
        if started.elapsed() > overall {
            return Err(cli_err("timed out waiting for admission"));
        }
        let resp = request(addr, &submit_line, io_timeout)?;
        if resp.get("ok").map(String::as_str) == Some("accepted") {
            break resp
                .get("job")
                .cloned()
                .ok_or_else(|| cli_err("accepted response without a job id"))?;
        }
        match resp.get("err").map(String::as_str) {
            Some("overloaded") => {
                let hint = resp
                    .get("retry_after_ms")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(500);
                std::thread::sleep(Duration::from_millis(hint));
            }
            _ => {
                return Err(cli_err(format!(
                    "submission rejected: {}",
                    proto::encode(&resp)
                )))
            }
        }
    };

    // poll to conclusion
    let status_line = proto::encode(&{
        let mut f = proto::Fields::new();
        f.insert("op".to_owned(), "status".to_owned());
        f.insert("job".to_owned(), job.clone());
        f
    });
    let result_line = proto::encode(&{
        let mut f = proto::Fields::new();
        f.insert("op".to_owned(), "result".to_owned());
        f.insert("job".to_owned(), job.clone());
        f
    });
    loop {
        if started.elapsed() > overall {
            return Err(cli_err(format!("timed out waiting for job {job}")));
        }
        let status = request(addr, &status_line, io_timeout)?;
        match status.get("state").map(String::as_str) {
            Some("done") | Some("failed") => return request(addr, &result_line, io_timeout),
            _ => std::thread::sleep(Duration::from_millis(200)),
        }
    }
}
