//! A minimal blocking client for the serve protocol — enough for the
//! `apex submit` CLI, the CI smoke test, and the soak tests.

use crate::proto::{self, Fields};
use apex_fault::{ApexError, Stage};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

fn cli_err(msg: impl Into<String>) -> ApexError {
    ApexError::new(Stage::Cli, msg)
}

/// Connects with a timeout (resolving `addr` first).
///
/// # Errors
/// Resolution or connection failures.
fn connect(addr: &str, timeout: Duration) -> Result<TcpStream, ApexError> {
    let resolved = addr
        .to_socket_addrs()
        .map_err(|e| cli_err(format!("cannot resolve {addr}: {e}")))?
        .next()
        .ok_or_else(|| cli_err(format!("{addr} resolves to nothing")))?;
    let stream = TcpStream::connect_timeout(&resolved, timeout)
        .map_err(|e| cli_err(format!("cannot connect to {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| cli_err(format!("cannot set socket timeouts: {e}")))?;
    Ok(stream)
}

/// Writes one request line. Under the `serve::slow_client` failpoint the
/// bytes trickle out one at a time with a pause — the canonical
/// malicious-client simulation the server's idle timeout must defeat.
fn send_line(stream: &mut TcpStream, line: &str) -> Result<(), ApexError> {
    let io = |e: std::io::Error| cli_err(format!("send failed: {e}"));
    #[cfg(feature = "fault-injection")]
    if apex_fault::failpoints::should_fire("serve::slow_client") {
        for b in line.as_bytes() {
            stream.write_all(std::slice::from_ref(b)).map_err(io)?;
            stream.flush().map_err(io)?;
            std::thread::sleep(Duration::from_millis(250));
        }
        stream.write_all(b"\n").map_err(io)?;
        return stream.flush().map_err(io);
    }
    stream.write_all(line.as_bytes()).map_err(io)?;
    stream.write_all(b"\n").map_err(io)?;
    stream.flush().map_err(io)
}

/// Reads one newline-terminated response line (bounded by the protocol
/// line cap — the server is trusted more than a client, but not
/// infinitely).
fn read_line(stream: &mut TcpStream) -> Result<String, ApexError> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return Err(cli_err(
                    "server closed the connection (idle timeout or drain?)",
                ))
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    return Ok(String::from_utf8_lossy(&buf).into_owned());
                }
                buf.push(byte[0]);
                if buf.len() > proto::MAX_LINE_BYTES {
                    return Err(cli_err("oversized response line"));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(cli_err(format!("read failed: {e}"))),
        }
    }
}

/// One request/response round trip on a fresh connection.
///
/// # Errors
/// Connection, I/O, or response-decoding failures. A protocol-level
/// error (`{"err":...}`) is returned as `Ok` — the caller decides
/// whether `overloaded` is fatal or a retry.
pub fn request(addr: &str, line: &str, timeout: Duration) -> Result<Fields, ApexError> {
    let mut stream = connect(addr, timeout)?;
    send_line(&mut stream, line)?;
    let response = read_line(&mut stream)?;
    proto::decode(&response).ok_or_else(|| cli_err(format!("undecodable response: {response}")))
}

/// Admission retries before a shed submission is given up on. Attempt
/// `k` sleeps the server's `retry_after_ms` hint plus deterministic
/// seeded jitter, so a fleet of clients rejected together does not
/// re-stampede the server in lockstep.
pub const MAX_ADMISSION_ATTEMPTS: u32 = 8;

/// Deterministic backoff for admission attempt `attempt` (0-based):
/// the server's hint plus up to 50% seeded jitter. SplitMix64 over
/// (seed, attempt) — the same submission retries on the same schedule
/// every run, while distinct tenants/graphs spread out.
pub fn backoff_with_jitter(hint_ms: u64, seed: u64, attempt: u32) -> Duration {
    let mut z = seed
        .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let jitter = if hint_ms == 0 { 0 } else { z % (hint_ms / 2 + 1) };
    Duration::from_millis(hint_ms.saturating_add(jitter))
}

/// FNV-1a over the submission identity, the jitter seed.
fn submission_seed(tenant: &str, graph: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in tenant.as_bytes().iter().chain(b"\x00").chain(graph.as_bytes()) {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Submits a graph and polls until it concludes (honoring `overloaded`
/// backpressure by sleeping the server's `retry_after_ms` hint plus
/// deterministic seeded jitter, for at most
/// [`MAX_ADMISSION_ATTEMPTS`] attempts).
/// Returns the final `result` (or `job_failed`) response fields.
///
/// # Errors
/// Transport failures, a shed submission still shed after the capped
/// retries, or the overall timeout expiring first.
pub fn submit_and_wait(
    addr: &str,
    tenant: &str,
    graph: &str,
    deadline_ms: Option<u64>,
    overall: Duration,
) -> Result<Fields, ApexError> {
    let started = Instant::now();
    let io_timeout = Duration::from_secs(10);
    let mut fields = proto::Fields::new();
    fields.insert("op".to_owned(), "submit".to_owned());
    fields.insert("graph".to_owned(), graph.to_owned());
    if !tenant.is_empty() {
        fields.insert("tenant".to_owned(), tenant.to_owned());
    }
    if let Some(ms) = deadline_ms {
        fields.insert("deadline_ms".to_owned(), ms.to_string());
    }
    let submit_line = proto::encode(&fields);

    // admission, retrying through backpressure with capped attempts and
    // deterministic seeded-jitter backoff
    let seed = submission_seed(tenant, graph);
    let mut attempt = 0u32;
    let job = loop {
        if started.elapsed() > overall {
            return Err(cli_err("timed out waiting for admission"));
        }
        let resp = request(addr, &submit_line, io_timeout)?;
        if resp.get("ok").map(String::as_str) == Some("accepted") {
            break resp
                .get("job")
                .cloned()
                .ok_or_else(|| cli_err("accepted response without a job id"))?;
        }
        match resp.get("err").map(String::as_str) {
            Some("overloaded") => {
                attempt += 1;
                if attempt >= MAX_ADMISSION_ATTEMPTS {
                    return Err(cli_err(format!(
                        "admission retries exhausted after {attempt} attempts \
                         (server still overloaded)"
                    )));
                }
                let hint = resp
                    .get("retry_after_ms")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(500);
                std::thread::sleep(backoff_with_jitter(hint, seed, attempt - 1));
            }
            _ => {
                return Err(cli_err(format!(
                    "submission rejected: {}",
                    proto::encode(&resp)
                )))
            }
        }
    };

    // poll to conclusion
    let status_line = proto::encode(&{
        let mut f = proto::Fields::new();
        f.insert("op".to_owned(), "status".to_owned());
        f.insert("job".to_owned(), job.clone());
        f
    });
    let result_line = proto::encode(&{
        let mut f = proto::Fields::new();
        f.insert("op".to_owned(), "result".to_owned());
        f.insert("job".to_owned(), job.clone());
        f
    });
    loop {
        if started.elapsed() > overall {
            return Err(cli_err(format!("timed out waiting for job {job}")));
        }
        let status = request(addr, &status_line, io_timeout)?;
        match status.get("state").map(String::as_str) {
            Some("done") | Some("failed") => return request(addr, &result_line, io_timeout),
            _ => std::thread::sleep(Duration::from_millis(200)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        for attempt in 0..MAX_ADMISSION_ATTEMPTS {
            for hint in [0u64, 1, 123, 500, 10_000] {
                let seed = submission_seed("tenant-a", "gaussian");
                let a = backoff_with_jitter(hint, seed, attempt);
                let b = backoff_with_jitter(hint, seed, attempt);
                assert_eq!(a, b, "same inputs must give the same backoff");
                assert!(a >= Duration::from_millis(hint), "never below the hint");
                assert!(
                    a <= Duration::from_millis(hint + hint / 2 + 1),
                    "jitter capped at ~50% of the hint"
                );
            }
        }
    }

    #[test]
    fn distinct_submissions_jitter_apart() {
        // not a hard guarantee, but the whole point of seeding by identity:
        // across several attempts, two distinct submissions must not share
        // the entire backoff schedule
        let s1 = submission_seed("tenant-a", "gaussian");
        let s2 = submission_seed("tenant-b", "harris");
        assert_ne!(s1, s2);
        let all_equal = (0..6).all(|k| {
            backoff_with_jitter(500, s1, k) == backoff_with_jitter(500, s2, k)
        });
        assert!(!all_equal, "schedules must diverge somewhere");
    }

    #[test]
    fn zero_hint_backoff_is_zero() {
        // a zero hint means "retry immediately"; jitter must not invent a
        // wait the server never asked for
        let seed = submission_seed("t", "g");
        assert_eq!(backoff_with_jitter(0, seed, 0), Duration::ZERO);
    }
}
