//! Job table + crash-safe job state for the daemon.
//!
//! Every job is **content-addressed**: its key is a hash of the tenant,
//! the DFG text, and the deadline, the same discipline as the variant
//! cache. Submitting the same work twice yields the same key (and the
//! second submit is a cheap idempotent hit), and the key doubles as the
//! job id clients poll.
//!
//! Durability reuses the PR 4 sweep journal verbatim: an admission is
//! journaled *before* it is acknowledged (`S` record), a conclusion
//! (`D`/`E` record) supersedes it under the journal's last-record-wins
//! replay. A job cancelled by drain is deliberately **not** journaled —
//! its latest record stays the admission, so `--resume` re-runs it and
//! the restarted daemon converges to byte-identical results.

use crate::proto;
use apex_core::{fnv1a, JobReport, JournalRecord, SweepJournal};
use apex_fault::{ApexError, Provenance};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Journal payload prefix for an admitted-but-unfinished job.
const REC_SUBMIT: &str = "S ";
/// Journal payload prefix for a finished job's report payload.
const REC_DONE: &str = "D ";
/// Journal payload prefix for a job that concluded in an error.
const REC_ERROR: &str = "E ";

/// Content-addressed job key: same inputs, same key, across restarts.
pub fn job_key(tenant: &str, graph: &str, deadline_ms: Option<u64>) -> u64 {
    let deadline = deadline_ms.map(|m| m.to_string()).unwrap_or_default();
    fnv1a(&["apex-serve job v1", tenant, graph, &deadline])
}

/// What a job is doing right now.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Admitted and journaled, waiting for a pool worker.
    Queued,
    /// On a pool worker.
    Running,
    /// Concluded with a report (journaled).
    Done {
        /// The rendered report payload.
        payload: String,
        /// How the job's search concluded.
        provenance: Provenance,
        /// Compact degradation summary (`-` when clean).
        degradations: String,
    },
    /// Concluded with a pipeline error (journaled).
    Failed {
        /// The rendered error chain.
        error: String,
    },
    /// Interrupted by drain; still pending from the journal's point of
    /// view, so a `--resume` restart re-runs it.
    Cancelled,
}

impl JobState {
    /// Stable wire name for the state (`status` responses).
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn is_unfinished(&self) -> bool {
        matches!(
            self,
            JobState::Queued | JobState::Running | JobState::Cancelled
        )
    }
}

/// One admitted job.
#[derive(Debug, Clone)]
struct JobEntry {
    tenant: String,
    graph: String,
    deadline_ms: Option<u64>,
    state: JobState,
}

/// A job the table wants (re-)enqueued on the pool.
#[derive(Debug, Clone)]
pub struct PendingJob {
    /// Content-addressed job key.
    pub key: u64,
    /// Cache namespace the job runs under.
    pub tenant: String,
    /// DFG text.
    pub graph: String,
    /// Requested per-job deadline, if any.
    pub deadline_ms: Option<u64>,
}

/// How an admission concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// A new job was journaled and must be enqueued.
    New,
    /// The key is already in flight; nothing to enqueue.
    InFlight,
    /// The key already concluded; the client can fetch the result now.
    Concluded,
}

/// Thread-safe job table shared by the accept loop, connection threads,
/// and pool workers.
#[derive(Debug)]
pub struct JobTable {
    jobs: Mutex<BTreeMap<u64, JobEntry>>,
    journal: SweepJournal,
}

/// Recovers a poisoned table lock: every mutation below leaves the map
/// consistent at each assignment, so the data is safe to keep using.
fn lock<'a>(
    m: &'a Mutex<BTreeMap<u64, JobEntry>>,
) -> std::sync::MutexGuard<'a, BTreeMap<u64, JobEntry>> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl JobTable {
    /// A table journaling to `journal`. With `resume`, replays it first:
    /// concluded jobs come back `Done`/`Failed`, admitted-but-unfinished
    /// jobs are returned as [`PendingJob`]s for the caller to enqueue.
    /// Without `resume` the journal is cleared (fresh daemon identity).
    pub fn new(journal: SweepJournal, resume: bool) -> (JobTable, Vec<PendingJob>) {
        let mut pending = Vec::new();
        let mut jobs = BTreeMap::new();
        if resume {
            let replay = journal.replay();
            for (key, rec) in replay.completed() {
                if let Some(entry) = decode_record(rec) {
                    if let JobState::Queued = entry.state {
                        pending.push(PendingJob {
                            key,
                            tenant: entry.tenant.clone(),
                            graph: entry.graph.clone(),
                            deadline_ms: entry.deadline_ms,
                        });
                    }
                    jobs.insert(key, entry);
                }
            }
        } else {
            journal.clear();
        }
        (
            JobTable {
                jobs: Mutex::new(jobs),
                journal,
            },
            pending,
        )
    }

    /// Admits one submission. New work is journaled **before** this
    /// returns (write-ahead: an acknowledged job survives a crash).
    ///
    /// # Errors
    /// The journal append failure, if any; the job is not admitted.
    pub fn admit(
        &self,
        tenant: &str,
        graph: &str,
        deadline_ms: Option<u64>,
    ) -> Result<(u64, Admission), ApexError> {
        let key = job_key(tenant, graph, deadline_ms);
        {
            let jobs = lock(&self.jobs);
            if let Some(entry) = jobs.get(&key) {
                return Ok(match entry.state {
                    JobState::Done { .. } | JobState::Failed { .. } => (key, Admission::Concluded),
                    _ => (key, Admission::InFlight),
                });
            }
        }
        self.journal.append(&JournalRecord {
            job_key: key,
            label: format!("submit {}", if tenant.is_empty() { "-" } else { tenant }),
            provenance: Provenance::Partial,
            degradations: "-".to_owned(),
            payload: format!("{REC_SUBMIT}{}", encode_submission(tenant, graph, deadline_ms)),
        })?;
        lock(&self.jobs).insert(
            key,
            JobEntry {
                tenant: tenant.to_owned(),
                graph: graph.to_owned(),
                deadline_ms,
                state: JobState::Queued,
            },
        );
        Ok((key, Admission::New))
    }

    /// Marks a queued job as on-worker. A cancelled re-queued job (drain
    /// raced the pool) transitions the same way.
    pub fn mark_running(&self, key: u64) {
        if let Some(entry) = lock(&self.jobs).get_mut(&key) {
            if entry.state.is_unfinished() {
                entry.state = JobState::Running;
            }
        }
    }

    /// Concludes a job with its report and journals the conclusion.
    pub fn complete(&self, key: u64, report: &JobReport) {
        let label = self.label_of(key, "done");
        // journal first: an acknowledged conclusion must survive a crash
        let _ = self.journal.append(&JournalRecord {
            job_key: key,
            label,
            provenance: report.provenance,
            degradations: report.degradations.clone(),
            payload: format!("{REC_DONE}{}", report.payload),
        });
        if let Some(entry) = lock(&self.jobs).get_mut(&key) {
            entry.state = JobState::Done {
                payload: report.payload.clone(),
                provenance: report.provenance,
                degradations: report.degradations.clone(),
            };
        }
    }

    /// Concludes a job with a pipeline error and journals the conclusion
    /// (errors are deterministic here — the same graph fails the same
    /// way — so replaying them as concluded is correct and avoids a
    /// crash-loop re-running poison jobs forever).
    pub fn fail(&self, key: u64, error: &ApexError) {
        let rendered = error.render_chain();
        let label = self.label_of(key, "failed");
        let _ = self.journal.append(&JournalRecord {
            job_key: key,
            label,
            provenance: Provenance::Completed,
            degradations: "-".to_owned(),
            payload: format!("{REC_ERROR}{rendered}"),
        });
        if let Some(entry) = lock(&self.jobs).get_mut(&key) {
            entry.state = JobState::Failed { error: rendered };
        }
    }

    /// Marks an interrupted job. Deliberately **not** journaled: the
    /// admission record stays the job's latest, so resume re-runs it.
    pub fn cancel(&self, key: u64) {
        if let Some(entry) = lock(&self.jobs).get_mut(&key) {
            if entry.state.is_unfinished() {
                entry.state = JobState::Cancelled;
            }
        }
    }

    /// Snapshot of one job's state.
    pub fn state(&self, key: u64) -> Option<JobState> {
        lock(&self.jobs).get(&key).map(|e| e.state.clone())
    }

    /// Jobs admitted but not yet picked up by a worker (the backpressure
    /// signal admission control sheds on).
    pub fn queued(&self) -> usize {
        lock(&self.jobs)
            .values()
            .filter(|e| e.state == JobState::Queued)
            .count()
    }

    /// Jobs currently on a pool worker.
    pub fn running(&self) -> usize {
        lock(&self.jobs)
            .values()
            .filter(|e| e.state == JobState::Running)
            .count()
    }

    /// `(queued, running, done, failed, cancelled)` counts for `stats`.
    pub fn counts(&self) -> (usize, usize, usize, usize, usize) {
        let jobs = lock(&self.jobs);
        let mut c = (0, 0, 0, 0, 0);
        for e in jobs.values() {
            match e.state {
                JobState::Queued => c.0 += 1,
                JobState::Running => c.1 += 1,
                JobState::Done { .. } => c.2 += 1,
                JobState::Failed { .. } => c.3 += 1,
                JobState::Cancelled => c.4 += 1,
            }
        }
        c
    }

    /// Jobs that have not concluded (what exit code 3 reports at drain).
    pub fn unfinished(&self) -> usize {
        lock(&self.jobs)
            .values()
            .filter(|e| e.state.is_unfinished())
            .count()
    }

    fn label_of(&self, key: u64, verb: &str) -> String {
        let jobs = lock(&self.jobs);
        let tenant = jobs
            .get(&key)
            .map(|e| e.tenant.as_str())
            .filter(|t| !t.is_empty())
            .unwrap_or("-");
        format!("{verb} {tenant}")
    }
}

/// Encodes a submission's fields for the `S` journal payload (the wire
/// codec doubles as the durable format).
fn encode_submission(tenant: &str, graph: &str, deadline_ms: Option<u64>) -> String {
    let mut f = proto::Fields::new();
    f.insert("tenant".to_owned(), tenant.to_owned());
    f.insert("graph".to_owned(), graph.to_owned());
    if let Some(ms) = deadline_ms {
        f.insert("deadline_ms".to_owned(), ms.to_string());
    }
    proto::encode(&f)
}

/// Rebuilds a job entry from its latest journal record; `None` drops
/// records this version cannot interpret (forward compatibility: an
/// unknown prefix must not wedge the restart).
fn decode_record(rec: &JournalRecord) -> Option<JobEntry> {
    if let Some(body) = rec.payload.strip_prefix(REC_SUBMIT) {
        let f = proto::decode(body)?;
        let graph = f.get("graph")?.clone();
        let tenant = f.get("tenant").cloned().unwrap_or_default();
        let deadline_ms = match f.get("deadline_ms") {
            None => None,
            Some(v) => Some(v.parse::<u64>().ok()?),
        };
        return Some(JobEntry {
            tenant,
            graph,
            deadline_ms,
            state: JobState::Queued,
        });
    }
    if let Some(body) = rec.payload.strip_prefix(REC_DONE) {
        return Some(JobEntry {
            tenant: String::new(),
            graph: String::new(),
            deadline_ms: None,
            state: JobState::Done {
                payload: body.to_owned(),
                provenance: rec.provenance,
                degradations: rec.degradations.clone(),
            },
        });
    }
    if let Some(body) = rec.payload.strip_prefix(REC_ERROR) {
        return Some(JobEntry {
            tenant: String::new(),
            graph: String::new(),
            deadline_ms: None,
            state: JobState::Failed {
                error: body.to_owned(),
            },
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_core::JobReport;

    fn scratch_journal(tag: &str) -> SweepJournal {
        let p = std::env::temp_dir().join(format!(
            "apex-serve-state-{tag}-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        SweepJournal::at(p)
    }

    #[test]
    fn admission_is_content_addressed_and_idempotent() {
        let (table, pending) = JobTable::new(scratch_journal("admit"), false);
        assert!(pending.is_empty());
        let (k1, a1) = table.admit("t", "g graph\n", None).expect("admit");
        let (k2, a2) = table.admit("t", "g graph\n", None).expect("re-admit");
        assert_eq!(k1, k2);
        assert_eq!(a1, Admission::New);
        assert_eq!(a2, Admission::InFlight);
        // a different tenant or deadline is different work
        let (k3, _) = table.admit("u", "g graph\n", None).expect("other tenant");
        let (k4, _) = table.admit("t", "g graph\n", Some(5)).expect("deadline");
        assert_ne!(k1, k3);
        assert_ne!(k1, k4);
        assert_eq!(table.queued(), 3);
    }

    #[test]
    fn resume_recovers_unfinished_jobs_and_concluded_results() {
        let journal = scratch_journal("resume");
        let path = journal.path().map(std::path::Path::to_path_buf);
        let (table, _) = JobTable::new(journal, false);
        let (done_key, _) = table.admit("t", "g done\n", None).expect("admit");
        let (pending_key, _) = table.admit("t", "g pending\n", Some(1000)).expect("admit");
        let (cancelled_key, _) = table.admit("t", "g cancelled\n", None).expect("admit");
        table.complete(
            done_key,
            &JobReport {
                payload: "the result".to_owned(),
                provenance: Provenance::Completed,
                degradations: "-".to_owned(),
            },
        );
        table.mark_running(cancelled_key);
        table.cancel(cancelled_key); // drain hit it mid-flight: not journaled
        assert_eq!(table.unfinished(), 2);

        // "restart": replay the same journal file
        let journal2 = SweepJournal::at(path.expect("journal path"));
        let (table2, pending) = JobTable::new(journal2, true);
        assert_eq!(
            table2.state(done_key),
            Some(JobState::Done {
                payload: "the result".to_owned(),
                provenance: Provenance::Completed,
                degradations: "-".to_owned(),
            })
        );
        let mut keys: Vec<u64> = pending.iter().map(|p| p.key).collect();
        keys.sort_unstable();
        let mut want = vec![pending_key, cancelled_key];
        want.sort_unstable();
        assert_eq!(keys, want, "unfinished jobs come back as pending");
        let restored = pending
            .iter()
            .find(|p| p.key == pending_key)
            .expect("pending job restored");
        assert_eq!(restored.graph, "g pending\n");
        assert_eq!(restored.deadline_ms, Some(1000));
    }

    #[test]
    fn failures_are_journaled_as_concluded() {
        let journal = scratch_journal("fail");
        let path = journal.path().map(std::path::Path::to_path_buf);
        let (table, _) = JobTable::new(journal, false);
        let (key, _) = table.admit("t", "g bad\n", None).expect("admit");
        table.fail(key, &ApexError::new(apex_fault::Stage::Parse, "no such graph"));
        let (table2, pending) =
            JobTable::new(SweepJournal::at(path.expect("journal path")), true);
        assert!(pending.is_empty(), "a failed job must not re-run forever");
        match table2.state(key) {
            Some(JobState::Failed { error }) => assert!(error.contains("no such graph")),
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn fresh_start_clears_the_journal() {
        let journal = scratch_journal("fresh");
        let path = journal.path().map(std::path::Path::to_path_buf).expect("path");
        let (table, _) = JobTable::new(journal, false);
        let (_key, _) = table.admit("t", "g x\n", None).expect("admit");
        assert!(path.exists());
        let (_table2, pending) = JobTable::new(SweepJournal::at(&path), false);
        assert!(pending.is_empty());
        assert!(!path.exists(), "non-resume start wipes stale state");
    }
}
