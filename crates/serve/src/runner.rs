//! Job execution: the [`JobRunner`] trait the server drives, and the
//! real [`DseRunner`] that runs the APEX pipeline on a submitted DFG.
//!
//! The trait exists so the server's robustness envelope (admission,
//! drain, timeouts, resume) is testable with fast fake runners; only the
//! CLI and the smoke tests pay for real DSE.

use apex_core::JobReport;
use apex_fault::{ApexError, Provenance, Stage, StageBudget};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// Everything one job execution needs.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Cache namespace the job's variant builds live under.
    pub tenant: String,
    /// DFG text (the `apex save` format).
    pub graph: String,
    /// Cooperative deadline for the whole job.
    pub deadline: Duration,
    /// Drain flag: when set, give up quickly and report
    /// [`Provenance::Cancelled`] (the server then leaves the job
    /// un-journaled so resume re-runs it).
    pub cancel: Arc<AtomicBool>,
}

/// Runs one submitted job to a report.
pub trait JobRunner: Send + Sync + 'static {
    /// Executes the job. Returning a report with
    /// [`Provenance::Cancelled`] means "interrupted, re-run me on
    /// resume"; any other provenance is a conclusion and is journaled.
    ///
    /// # Errors
    /// A pipeline error; the server journals it as a concluded failure.
    fn run(&self, spec: &JobSpec) -> Result<JobReport, ApexError>;
}

/// The production runner: parse → specialize (cached per tenant) →
/// post-mapping estimates, the same flow as `apex dse-file`, with the
/// deadline and the drain flag plumbed into every budgeted stage.
#[derive(Debug, Default)]
pub struct DseRunner;

impl JobRunner for DseRunner {
    fn run(&self, spec: &JobSpec) -> Result<JobReport, ApexError> {
        // the job-level meter: consulted between pipeline phases so a
        // drain or deadline stops the job at the next phase boundary
        // even if an inner stage lacks its own budget
        let budget = StageBudget::unlimited()
            .with_deadline(spec.deadline)
            .with_cancel(Arc::clone(&spec.cancel));
        let mut meter = budget.start();

        let graph = apex_ir::from_text(&spec.graph)
            .map_err(|e| ApexError::new(Stage::Parse, format!("submitted graph: {e}")))?;
        graph
            .try_validate()
            .map_err(|e| ApexError::new(Stage::Parse, format!("submitted graph: {e}")))?;
        let app = apex_apps::Application::new(
            apex_apps::AppInfo {
                name: graph.name().to_owned(),
                domain: apex_apps::Domain::ImageProcessing,
                description: "submitted over the wire".to_owned(),
                mem_tiles: 8,
                io_tiles: 4,
                unroll: 1,
                output_pixels: 1 << 20,
            },
            graph,
        );
        if !meter.check_slow() {
            return Ok(interrupted_report(&meter));
        }

        let tech = apex_tech::TechModel::default();
        // mining gets the same deadline/cancel pair as its own budget so
        // cancellation lands mid-mine, not only at phase boundaries
        let miner = apex_mining::MinerConfig {
            budget: StageBudget::unlimited()
                .with_deadline(spec.deadline)
                .with_cancel(Arc::clone(&spec.cancel)),
            ..apex_mining::MinerConfig::default()
        };
        let tenant = spec.tenant.clone();
        let build = || -> Result<_, ApexError> {
            let spec_variant = apex_core::most_specialized_variant(
                &app,
                &miner,
                &apex_merge::MergeOptions::default(),
                &tech,
                4,
            )?;
            let base = apex_core::baseline_variant(&[&app])?;
            Ok((spec_variant, base))
        };
        let built = if tenant.is_empty() {
            build()
        } else {
            apex_core::with_thread_tenant(&tenant, build)
        };
        let (spec_variant, base) = match built {
            Ok(v) => v,
            Err(e) => {
                // distinguish "the drain flag stopped the build" from a
                // real pipeline failure: interrupted work must stay
                // pending, not be journaled as failed
                if !meter.check_slow() {
                    return Ok(interrupted_report(&meter));
                }
                return Err(e);
            }
        };
        if !meter.check_slow() {
            return Ok(interrupted_report(&meter));
        }

        let (bn, ba, be) = apex_core::post_mapping_estimate(&base, &app, &tech)?;
        let (sn, sa, se) = apex_core::post_mapping_estimate(&spec_variant, &app, &tech)?;
        let payload = format!(
            "custom app '{}': {} compute ops\nbaseline   : {bn} PEs, {ba:.0} um2, {be:.1} pJ/cycle\nspecialized: {sn} PEs, {sa:.0} um2, {se:.1} pJ/cycle ({} subgraphs merged)\n",
            app.info.name,
            app.graph.compute_op_count(),
            spec_variant.sources.len(),
        );
        Ok(JobReport {
            payload,
            provenance: Provenance::Completed,
            degradations: "-".to_owned(),
        })
    }
}

/// The report for a job stopped by the drain flag or its deadline: the
/// server journals a [`Provenance::TimedOut`] conclusion (re-running
/// would time out again) but leaves a [`Provenance::Cancelled`] job
/// pending for resume.
fn interrupted_report(meter: &apex_fault::BudgetMeter) -> JobReport {
    let provenance = match meter.provenance() {
        Provenance::Completed => Provenance::Cancelled,
        p => p,
    };
    JobReport {
        payload: format!("# job stopped early ({})\n", provenance.marker()),
        provenance,
        degradations: provenance.marker().to_owned(),
    }
}
