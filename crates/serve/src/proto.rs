//! Wire codec for the `apex serve` protocol: one flat JSON object per
//! line, every value a string.
//!
//! The daemon deliberately speaks the same dialect the sweep journal
//! writes — flat objects, string values, fixed escaping — so the whole
//! stack stays std-only and strictly parseable. Anything the encoder
//! cannot produce (nested objects, numbers, unknown escapes) is rejected
//! as `bad_request` instead of being guessed at: the peer is untrusted.
//!
//! See `DESIGN.md` §7 for the full request/response catalogue.

use std::collections::BTreeMap;

/// Hard cap a conforming client must stay under for one request line
/// (servers may configure a lower bound; DFG text dominates the budget).
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Escapes a string for embedding in one wire line (same discipline as
/// the journal encoder: `\\ \" \n \r \t` only).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

/// Strict inverse of [`esc`]; `None` on any escape the encoder never
/// produces.
fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            _ => return None,
        }
    }
    Some(out)
}

/// An ordered flat string-to-string map — the only value shape the
/// protocol has. Field order is preserved on encode via sorted keys, so
/// responses are byte-stable.
pub type Fields = BTreeMap<String, String>;

/// Encodes a flat object as one wire line (no trailing newline). Keys
/// are emitted in sorted order so identical content is identical bytes.
pub fn encode(fields: &Fields) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&esc(k));
        out.push_str("\":\"");
        out.push_str(&esc(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// Decodes one wire line into a flat object. `None` on anything that is
/// not exactly `{"k":"v",...}` with the journal escaping — duplicate
/// keys, nesting, numbers and trailing bytes all fail.
pub fn decode(line: &str) -> Option<Fields> {
    let line = line.trim();
    let mut rest = line.strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Fields::new();
    if rest.is_empty() {
        return Some(fields);
    }
    let mut first = true;
    while !rest.is_empty() {
        if !first {
            rest = rest.strip_prefix(',')?;
        }
        first = false;
        rest = rest.strip_prefix('"')?;
        let (key_raw, after_key) = take_quoted(rest)?;
        rest = after_key.strip_prefix(':')?.strip_prefix('"')?;
        let (val_raw, after_val) = take_quoted(rest)?;
        rest = after_val;
        let key = unesc(key_raw)?;
        let val = unesc(val_raw)?;
        if fields.insert(key, val).is_some() {
            return None; // duplicate key: ambiguous, reject
        }
    }
    Some(fields)
}

/// Splits `s` at the first unescaped `"`, returning the raw (still
/// escaped) content and the remainder after the quote.
fn take_quoted(s: &str) -> Option<(&str, &str)> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some((&s[..i], &s[i + 1..])),
            _ => i += 1,
        }
    }
    None
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness + load probe.
    Ping,
    /// Submit a DFG-text sweep job.
    Submit {
        /// Cache namespace the job runs under (sanitized server-side).
        tenant: String,
        /// DFG text (the `apex save` format).
        graph: String,
        /// Per-job deadline in milliseconds; `None` = server default.
        deadline_ms: Option<u64>,
    },
    /// Poll one job's state.
    Status {
        /// Job key returned by `submit`.
        job: u64,
    },
    /// Fetch one finished job's payload.
    Result {
        /// Job key returned by `submit`.
        job: u64,
    },
    /// Daemon counters (admissions, sheds, evictions, ...).
    Stats,
    /// Ask the daemon to drain and exit (same path as SIGTERM).
    Drain,
}

/// Why a request line failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Not a flat JSON object in the wire dialect.
    Malformed,
    /// No `op` field, or an unknown one.
    UnknownOp,
    /// A required field for the op is missing or unparseable.
    BadField(&'static str),
}

impl ParseError {
    /// The `detail` string reported back to the client.
    pub fn detail(self) -> String {
        match self {
            ParseError::Malformed => "not a flat json object".to_owned(),
            ParseError::UnknownOp => {
                "unknown op (expected ping|submit|status|result|stats|drain)".to_owned()
            }
            ParseError::BadField(f) => format!("missing or invalid field '{f}'"),
        }
    }
}

/// Parses one request line.
///
/// # Errors
/// [`ParseError`] describing what the client got wrong; the server
/// reports it as a `bad_request` response and keeps the connection.
pub fn parse_request(line: &str) -> Result<Request, ParseError> {
    let fields = decode(line).ok_or(ParseError::Malformed)?;
    let op = fields.get("op").ok_or(ParseError::UnknownOp)?;
    match op.as_str() {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "drain" => Ok(Request::Drain),
        "submit" => {
            let graph = fields
                .get("graph")
                .filter(|g| !g.trim().is_empty())
                .ok_or(ParseError::BadField("graph"))?
                .clone();
            let tenant = fields.get("tenant").cloned().unwrap_or_default();
            let deadline_ms = match fields.get("deadline_ms") {
                None => None,
                Some(v) => Some(
                    v.parse::<u64>()
                        .ok()
                        .filter(|ms| *ms > 0)
                        .ok_or(ParseError::BadField("deadline_ms"))?,
                ),
            };
            Ok(Request::Submit {
                tenant,
                graph,
                deadline_ms,
            })
        }
        "status" | "result" => {
            let job = fields
                .get("job")
                .and_then(|j| u64::from_str_radix(j, 16).ok())
                .ok_or(ParseError::BadField("job"))?;
            Ok(if op == "status" {
                Request::Status { job }
            } else {
                Request::Result { job }
            })
        }
        _ => Err(ParseError::UnknownOp),
    }
}

/// Builds an `{"ok":<kind>, ...}` response line.
pub fn ok_response(kind: &str, extra: &[(&str, String)]) -> String {
    let mut f = Fields::new();
    f.insert("ok".to_owned(), kind.to_owned());
    for (k, v) in extra {
        f.insert((*k).to_owned(), v.clone());
    }
    encode(&f)
}

/// Builds an `{"err":<code>, ...}` response line. Error codes are the
/// protocol's stable surface: `bad_request`, `overloaded`, `draining`,
/// `unknown_job`, `not_done`, `line_too_long`, `idle_timeout`.
pub fn err_response(code: &str, extra: &[(&str, String)]) -> String {
    let mut f = Fields::new();
    f.insert("err".to_owned(), code.to_owned());
    for (k, v) in extra {
        f.insert((*k).to_owned(), v.clone());
    }
    encode(&f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        let mut f = Fields::new();
        f.insert("op".to_owned(), "submit".to_owned());
        f.insert("graph".to_owned(), "line1\nline2\t\"x\\y\"".to_owned());
        let line = encode(&f);
        assert!(!line.contains('\n'), "wire lines must be single lines");
        assert_eq!(decode(&line), Some(f));
    }

    #[test]
    fn decode_rejects_what_the_encoder_never_writes() {
        assert!(decode("not json").is_none());
        assert!(decode("{\"a\":1}").is_none(), "numbers are not in the dialect");
        assert!(decode("{\"a\":{\"b\":\"c\"}}").is_none(), "no nesting");
        assert!(decode("{\"a\":\"x\",\"a\":\"y\"}").is_none(), "no duplicate keys");
        assert!(decode("{\"a\":\"\\q\"}").is_none(), "unknown escape");
        assert!(decode("{\"a\":\"x\"}trailing").is_none());
        assert_eq!(decode("{}"), Some(Fields::new()));
    }

    #[test]
    fn parse_request_covers_the_op_catalogue() {
        assert_eq!(parse_request("{\"op\":\"ping\"}"), Ok(Request::Ping));
        assert_eq!(parse_request("{\"op\":\"stats\"}"), Ok(Request::Stats));
        assert_eq!(parse_request("{\"op\":\"drain\"}"), Ok(Request::Drain));
        assert_eq!(
            parse_request("{\"op\":\"submit\",\"tenant\":\"acme\",\"graph\":\"g x\"}"),
            Ok(Request::Submit {
                tenant: "acme".to_owned(),
                graph: "g x".to_owned(),
                deadline_ms: None
            })
        );
        assert_eq!(
            parse_request("{\"op\":\"status\",\"job\":\"00ff\"}"),
            Ok(Request::Status { job: 0xff })
        );
        assert_eq!(
            parse_request("{\"op\":\"result\",\"job\":\"a\"}"),
            Ok(Request::Result { job: 0xa })
        );
    }

    #[test]
    fn parse_request_rejects_bad_fields() {
        assert_eq!(parse_request("nope"), Err(ParseError::Malformed));
        assert_eq!(parse_request("{\"x\":\"y\"}"), Err(ParseError::UnknownOp));
        assert_eq!(parse_request("{\"op\":\"fly\"}"), Err(ParseError::UnknownOp));
        assert_eq!(
            parse_request("{\"op\":\"submit\"}"),
            Err(ParseError::BadField("graph"))
        );
        assert_eq!(
            parse_request("{\"op\":\"submit\",\"graph\":\"g\",\"deadline_ms\":\"soon\"}"),
            Err(ParseError::BadField("deadline_ms"))
        );
        assert_eq!(
            parse_request("{\"op\":\"submit\",\"graph\":\"g\",\"deadline_ms\":\"0\"}"),
            Err(ParseError::BadField("deadline_ms"))
        );
        assert_eq!(
            parse_request("{\"op\":\"status\",\"job\":\"zz\"}"),
            Err(ParseError::BadField("job"))
        );
    }

    #[test]
    fn responses_are_stable_bytes() {
        assert_eq!(
            ok_response("accepted", &[("job", "00ff".to_owned())]),
            "{\"job\":\"00ff\",\"ok\":\"accepted\"}"
        );
        assert_eq!(
            err_response("overloaded", &[("retry_after_ms", "500".to_owned())]),
            "{\"err\":\"overloaded\",\"retry_after_ms\":\"500\"}"
        );
    }
}
