//! The daemon: accept loop, connection handling, admission control,
//! backpressure, and graceful drain.
//!
//! Threading model (three tiers, deliberately separated so no tier can
//! starve another):
//!
//! * the **accept loop** (caller's thread) polls the listener
//!   non-blockingly, feeds admitted jobs to the pool, and watches the
//!   interrupt flag;
//! * **connection threads** (one per client, capped) do all socket I/O
//!   under read/write timeouts and a bounded line length — a slow or
//!   malicious client burns its own thread for at most the idle timeout,
//!   never a pool worker;
//! * **pool workers** ([`apex_par::WorkerPool`]) run the DSE jobs and
//!   never touch a socket.
//!
//! Backpressure: admission is bounded by `queue_limit` over the job
//! table's queued count. Past the limit the daemon sheds with a
//! structured `overloaded` response carrying a `retry_after_ms` hint —
//! it never queues unboundedly. Drain (SIGINT/SIGTERM or the `drain`
//! op): stop admitting, abandon queued pool jobs (their admissions are
//! journaled; `--resume` re-runs them), cancel running jobs
//! cooperatively via the shared stop flag, flush, report unfinished
//! count for the exit code.

use crate::proto::{self, Request};
use crate::runner::{JobRunner, JobSpec};
use crate::state::{Admission, JobState, JobTable, PendingJob};
use apex_core::{SweepJournal, VariantCache};
use apex_fault::{ApexError, Provenance, Stage};
use apex_par::WorkerPool;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tuning knobs for one daemon instance. `Default` is sized for tests
/// and small deployments; the CLI exposes the ones operators need.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7341` (`:0` = ephemeral).
    pub addr: String,
    /// Pool workers; `0` = [`apex_par::default_jobs`].
    pub workers: usize,
    /// Admission bound: submissions beyond this many queued jobs are
    /// shed with `overloaded`.
    pub queue_limit: usize,
    /// Concurrent connection cap; excess connections are turned away
    /// with `overloaded` before a request is read.
    pub max_conns: usize,
    /// Per-connection read/write timeout; an idle or trickling client
    /// is disconnected after this long without a complete line.
    pub idle_timeout: Duration,
    /// Request line byte bound (DFG text dominates); longer lines get
    /// `line_too_long` and a disconnect.
    pub line_limit: usize,
    /// Deadline applied to jobs that do not request one.
    pub default_deadline: Duration,
    /// The `retry_after_ms` hint shed submissions carry.
    pub retry_after: Duration,
    /// Replay the journal and re-run unfinished jobs on startup.
    pub resume: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7341".to_owned(),
            workers: 0,
            queue_limit: 32,
            max_conns: 64,
            idle_timeout: Duration::from_secs(10),
            line_limit: proto::MAX_LINE_BYTES,
            default_deadline: Duration::from_secs(300),
            retry_after: Duration::from_millis(500),
            resume: false,
        }
    }
}

/// The daemon's default journal (one well-known identity per workspace,
/// so a restarted `apex serve --resume` finds its predecessor's state).
pub fn default_journal() -> SweepJournal {
    SweepJournal::for_sweep(apex_core::fnv1a(&["apex-serve v1"]))
}

/// Counters shared across the daemon's threads, surfaced by `stats`.
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    shed: AtomicU64,
    timeouts: AtomicU64,
    bad_lines: AtomicU64,
    refused_conns: AtomicU64,
}

/// State shared by the accept loop, connection threads, and job
/// closures.
struct Shared {
    table: JobTable,
    /// Keys admitted by connection threads, waiting for the accept loop
    /// to hand them to the pool (connection threads never own the pool).
    inbox: Mutex<VecDeque<PendingJob>>,
    /// Set on drain: admissions are refused, running jobs see cancel.
    stop: Arc<AtomicBool>,
    /// Set by the `drain` op (the signal path sets the interrupt flag).
    drain_requested: AtomicBool,
    conns: AtomicUsize,
    counters: Counters,
    config: ServeConfig,
}

/// What a finished [`Server::run`] reports; the CLI maps `unfinished >
/// 0` to exit code 3 (resumable), mirroring the sweep convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Jobs concluded (done or failed) over the daemon's lifetime.
    pub concluded: u64,
    /// Jobs still pending at drain (journaled; re-run by `--resume`).
    pub unfinished: usize,
    /// Submissions shed by backpressure.
    pub shed: u64,
    /// Connections dropped by the idle/read timeout.
    pub timeouts: u64,
}

/// One `apex serve` instance, generic over the job runner so tests can
/// inject fast fakes.
pub struct Server<R: JobRunner> {
    listener: TcpListener,
    shared: Arc<Shared>,
    runner: Arc<R>,
    pending: Vec<PendingJob>,
}

impl<R: JobRunner> Server<R> {
    /// Binds the listener and replays the journal (under
    /// `config.resume`). No connection is accepted until [`Server::run`].
    ///
    /// # Errors
    /// Address bind failures.
    pub fn bind(config: ServeConfig, journal: SweepJournal, runner: R) -> Result<Self, ApexError> {
        let listener = TcpListener::bind(&config.addr).map_err(|e| {
            ApexError::with_source(Stage::Cli, e)
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ApexError::with_source(Stage::Cli, e))?;
        let (table, pending) = JobTable::new(journal, config.resume);
        let shared = Arc::new(Shared {
            table,
            inbox: Mutex::new(VecDeque::new()),
            stop: Arc::new(AtomicBool::new(false)),
            drain_requested: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            counters: Counters::default(),
            config,
        });
        Ok(Server {
            listener,
            shared,
            runner: Arc::new(runner),
            pending,
        })
    }

    /// The bound address (`:0` binds resolve to a real port here).
    ///
    /// # Errors
    /// The OS refusing to report the local address.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, ApexError> {
        self.listener
            .local_addr()
            .map_err(|e| ApexError::with_source(Stage::Cli, e))
    }

    /// Runs the daemon until drain (SIGINT/SIGTERM via
    /// `apex_fault::interrupt`, or a client `drain` op), then shuts the
    /// pool down and reports. Blocks the calling thread.
    pub fn run(self) -> RunSummary {
        let workers = if self.shared.config.workers == 0 {
            apex_par::default_jobs()
        } else {
            self.shared.config.workers
        };
        let pool = WorkerPool::new(workers);
        log_line(
            "INFO",
            &format!(
                "listening on {} ({} workers, queue limit {})",
                self.local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| self.shared.config.addr.clone()),
                workers,
                self.shared.config.queue_limit
            ),
        );
        // resumed jobs go through the same inbox as fresh admissions
        if !self.pending.is_empty() {
            log_line(
                "INFO",
                &format!("resuming {} unfinished job(s) from the journal", self.pending.len()),
            );
            let mut inbox = lock_inbox(&self.shared.inbox);
            inbox.extend(self.pending.iter().cloned());
        }
        loop {
            if apex_fault::interrupt::interrupted()
                || self.shared.drain_requested.load(Ordering::Relaxed)
            {
                break;
            }
            self.dispatch_inbox(&pool);
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    #[cfg(feature = "fault-injection")]
                    if apex_fault::failpoints::should_fire("serve::accept_error") {
                        // injected transient accept failure: the daemon
                        // must drop the connection and keep serving
                        log_line("WARN", &format!("accept error (injected), dropped {peer}"));
                        drop(stream);
                        continue;
                    }
                    self.spawn_conn(stream, peer);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    // transient accept errors (EMFILE, aborted handshake)
                    // must not kill the daemon
                    log_line("WARN", &format!("accept error: {e}"));
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        self.drain(pool)
    }

    /// Hands admitted jobs to the pool (only the accept loop touches the
    /// pool, so drain can consume it).
    fn dispatch_inbox(&self, pool: &WorkerPool) {
        loop {
            let job = {
                let mut inbox = lock_inbox(&self.shared.inbox);
                inbox.pop_front()
            };
            let Some(job) = job else { return };
            let shared = Arc::clone(&self.shared);
            let runner = Arc::clone(&self.runner);
            let submitted = pool.submit(move || run_job(&shared, runner.as_ref(), &job));
            if !submitted {
                // pool already shut down; the admission is journaled and
                // will re-run on resume
                return;
            }
        }
    }

    /// Spawns one connection thread (or turns the client away when the
    /// connection cap is reached).
    fn spawn_conn(&self, mut stream: TcpStream, peer: std::net::SocketAddr) {
        let shared = Arc::clone(&self.shared);
        if shared.conns.load(Ordering::Relaxed) >= shared.config.max_conns {
            shared.counters.refused_conns.fetch_add(1, Ordering::Relaxed);
            let line = proto::err_response(
                "overloaded",
                &[(
                    "retry_after_ms",
                    shared.config.retry_after.as_millis().to_string(),
                )],
            );
            let _ = stream.set_write_timeout(Some(shared.config.idle_timeout));
            let _ = stream.write_all(line.as_bytes());
            let _ = stream.write_all(b"\n");
            return;
        }
        shared.conns.fetch_add(1, Ordering::Relaxed);
        let builder = std::thread::Builder::new().name(format!("apex-conn-{peer}"));
        let spawned = builder.spawn(move || {
            handle_conn(&shared, stream);
            shared.conns.fetch_sub(1, Ordering::Relaxed);
        });
        if spawned.is_err() {
            // thread spawn failure: release the slot and move on
            self.shared.conns.fetch_sub(1, Ordering::Relaxed);
            log_line("WARN", &format!("cannot spawn connection thread for {peer}"));
        }
    }

    /// Graceful drain: refuse admissions, abandon queued pool jobs
    /// (journaled — resume re-runs them), cancel running jobs
    /// cooperatively, then account what is left.
    fn drain(self, pool: WorkerPool) -> RunSummary {
        log_line("INFO", "draining: admissions closed");
        self.shared.stop.store(true, Ordering::SeqCst);
        // queued-but-undispatched inbox jobs stay Queued in the table
        pool.shutdown(false);
        // running jobs have now either concluded or reported Cancelled
        let (_, _, done, failed, cancelled) = self.shared.table.counts();
        let unfinished = self.shared.table.unfinished();
        let summary = RunSummary {
            concluded: (done + failed) as u64,
            unfinished,
            shed: self.shared.counters.shed.load(Ordering::Relaxed),
            timeouts: self.shared.counters.timeouts.load(Ordering::Relaxed),
        };
        log_line(
            "INFO",
            &format!(
                "drained: {} concluded, {} unfinished ({} cancelled mid-flight), {} shed",
                summary.concluded, summary.unfinished, cancelled, summary.shed
            ),
        );
        if unfinished > 0 {
            log_line("INFO", "restart with --resume to finish the remaining jobs");
        }
        summary
    }
}

/// Recovers a poisoned inbox lock (pushes/pops are single operations;
/// the queue is always consistent).
fn lock_inbox(m: &Mutex<VecDeque<PendingJob>>) -> std::sync::MutexGuard<'_, VecDeque<PendingJob>> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Runs one job on a pool worker.
fn run_job<R: JobRunner>(shared: &Shared, runner: &R, job: &PendingJob) {
    if shared.stop.load(Ordering::Relaxed) {
        // drain raced the dispatch: leave the job Queued for resume
        return;
    }
    #[cfg(feature = "fault-injection")]
    if apex_fault::failpoints::should_fire("serve::mid_job_kill") {
        // injected daemon kill: the first job to start flips the
        // interrupt flag, as if SIGTERM arrived mid-flight (disarmed so
        // the drain itself runs normally)
        apex_fault::failpoints::disarm("serve::mid_job_kill");
        apex_fault::interrupt::trigger();
    }
    shared.table.mark_running(job.key);
    let deadline = job
        .deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(shared.config.default_deadline);
    let spec = JobSpec {
        tenant: job.tenant.clone(),
        graph: job.graph.clone(),
        deadline,
        cancel: Arc::clone(&shared.stop),
    };
    match runner.run(&spec) {
        Ok(report) if report.provenance == Provenance::Cancelled => {
            // interrupted by drain: not journaled, resume re-runs it
            shared.table.cancel(job.key);
        }
        Ok(report) => shared.table.complete(job.key, &report),
        Err(e) => {
            log_line("WARN", &format!("job {:016x} failed: {}", job.key, e.render_chain()));
            shared.table.fail(job.key, &e);
        }
    }
}

/// Reads newline-terminated lines from a socket under a byte bound and
/// a per-line wall-clock deadline. The socket read timeout alone cannot
/// defeat a trickling client — one byte per interval keeps every
/// individual `read` fast while the line never completes — so each
/// `next_line` call also carries a deadline for the *whole* line.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    limit: usize,
    idle: Duration,
}

/// Why a connection read ended.
enum ReadOutcome {
    Line(String),
    Eof,
    TooLong,
    IdleTimeout,
    Error,
}

impl LineReader {
    fn next_line(&mut self) -> ReadOutcome {
        let deadline = std::time::Instant::now() + self.idle;
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                let text = String::from_utf8_lossy(&line[..pos]).into_owned();
                return ReadOutcome::Line(text);
            }
            if self.buf.len() > self.limit {
                return ReadOutcome::TooLong;
            }
            // checked before the read so a trickling client is cut off at
            // most one socket-timeout past the line deadline
            if std::time::Instant::now() >= deadline {
                return ReadOutcome::IdleTimeout;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadOutcome::Eof,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return ReadOutcome::IdleTimeout;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return ReadOutcome::Error,
            }
        }
    }
}

/// Serves one connection until EOF, timeout, oversized line, or drain.
fn handle_conn(shared: &Shared, stream: TcpStream) {
    let idle = shared.config.idle_timeout;
    if stream.set_read_timeout(Some(idle)).is_err() || stream.set_write_timeout(Some(idle)).is_err()
    {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = LineReader {
        stream,
        buf: Vec::new(),
        limit: shared.config.line_limit,
        idle,
    };
    loop {
        match reader.next_line() {
            ReadOutcome::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let response = handle_request(shared, &line);
                if write_line(&mut writer, &response).is_err() {
                    return;
                }
            }
            ReadOutcome::Eof | ReadOutcome::Error => return,
            ReadOutcome::TooLong => {
                shared.counters.bad_lines.fetch_add(1, Ordering::Relaxed);
                let _ = write_line(
                    &mut writer,
                    &proto::err_response(
                        "line_too_long",
                        &[("limit", shared.config.line_limit.to_string())],
                    ),
                );
                return;
            }
            ReadOutcome::IdleTimeout => {
                shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                log_line("WARN", "idle connection disconnected");
                let _ = write_line(&mut writer, &proto::err_response("idle_timeout", &[]));
                return;
            }
        }
    }
}

fn write_line(w: &mut TcpStream, line: &str) -> std::io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Dispatches one parsed request to a response line.
fn handle_request(shared: &Shared, line: &str) -> String {
    let request = match proto::parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            shared.counters.bad_lines.fetch_add(1, Ordering::Relaxed);
            return proto::err_response("bad_request", &[("detail", e.detail())]);
        }
    };
    match request {
        Request::Ping => proto::ok_response(
            "pong",
            &[
                ("queued", shared.table.queued().to_string()),
                ("running", shared.table.running().to_string()),
                (
                    "draining",
                    draining(shared).to_string(),
                ),
            ],
        ),
        Request::Submit {
            tenant,
            graph,
            deadline_ms,
        } => handle_submit(shared, &tenant, &graph, deadline_ms),
        Request::Status { job } => match shared.table.state(job) {
            None => proto::err_response("unknown_job", &[("job", format!("{job:016x}"))]),
            Some(state) => {
                let mut extra = vec![
                    ("job", format!("{job:016x}")),
                    ("state", state.name().to_owned()),
                ];
                if let JobState::Done { provenance, .. } = &state {
                    extra.push(("provenance", provenance.marker().to_owned()));
                }
                proto::ok_response("status", &extra)
            }
        },
        Request::Result { job } => match shared.table.state(job) {
            None => proto::err_response("unknown_job", &[("job", format!("{job:016x}"))]),
            Some(JobState::Done {
                payload,
                provenance,
                degradations,
            }) => proto::ok_response(
                "result",
                &[
                    ("job", format!("{job:016x}")),
                    ("payload", payload),
                    ("provenance", provenance.marker().to_owned()),
                    ("degradations", degradations),
                ],
            ),
            Some(JobState::Failed { error }) => proto::err_response(
                "job_failed",
                &[("job", format!("{job:016x}")), ("detail", error)],
            ),
            Some(state) => proto::err_response(
                "not_done",
                &[
                    ("job", format!("{job:016x}")),
                    ("state", state.name().to_owned()),
                ],
            ),
        },
        Request::Stats => {
            let (queued, running, done, failed, cancelled) = shared.table.counts();
            let cache = VariantCache::shared();
            proto::ok_response(
                "stats",
                &[
                    ("queued", queued.to_string()),
                    ("running", running.to_string()),
                    ("done", done.to_string()),
                    ("failed", failed.to_string()),
                    ("cancelled", cancelled.to_string()),
                    (
                        "accepted",
                        shared.counters.accepted.load(Ordering::Relaxed).to_string(),
                    ),
                    ("shed", shared.counters.shed.load(Ordering::Relaxed).to_string()),
                    (
                        "timeouts",
                        shared.counters.timeouts.load(Ordering::Relaxed).to_string(),
                    ),
                    (
                        "bad_lines",
                        shared.counters.bad_lines.load(Ordering::Relaxed).to_string(),
                    ),
                    ("conns", shared.conns.load(Ordering::Relaxed).to_string()),
                    ("cache_hits", cache.hits().to_string()),
                    ("cache_misses", cache.misses().to_string()),
                    ("cache_evicted", cache.evicted().to_string()),
                ],
            )
        }
        Request::Drain => {
            shared.drain_requested.store(true, Ordering::SeqCst);
            proto::ok_response("draining", &[])
        }
    }
}

fn draining(shared: &Shared) -> bool {
    shared.stop.load(Ordering::Relaxed)
        || shared.drain_requested.load(Ordering::Relaxed)
        || apex_fault::interrupt::interrupted()
}

/// Admission control: drain and backpressure checks, then write-ahead
/// journal + table insert + inbox push.
fn handle_submit(shared: &Shared, tenant: &str, graph: &str, deadline_ms: Option<u64>) -> String {
    if draining(shared) {
        return proto::err_response("draining", &[]);
    }
    let queued = shared.table.queued();
    if queued >= shared.config.queue_limit {
        shared.counters.shed.fetch_add(1, Ordering::Relaxed);
        return proto::err_response(
            "overloaded",
            &[
                (
                    "retry_after_ms",
                    shared.config.retry_after.as_millis().to_string(),
                ),
                ("queued", queued.to_string()),
            ],
        );
    }
    match shared.table.admit(tenant, graph, deadline_ms) {
        Err(e) => {
            // the admission journal is the durability guarantee; refusing
            // is safer than accepting work a crash would silently drop
            log_line("WARN", &format!("admission journal write failed: {}", e.render_chain()));
            proto::err_response("journal_error", &[("detail", e.message().to_owned())])
        }
        Ok((key, admission)) => {
            if admission == Admission::New {
                shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
                let mut inbox = lock_inbox(&shared.inbox);
                inbox.push_back(PendingJob {
                    key,
                    tenant: tenant.to_owned(),
                    graph: graph.to_owned(),
                    deadline_ms,
                });
            }
            let state = shared
                .table
                .state(key)
                .map(|s| s.name().to_owned())
                .unwrap_or_else(|| "queued".to_owned());
            proto::ok_response(
                "accepted",
                &[("job", format!("{key:016x}")), ("state", state)],
            )
        }
    }
}

/// One structured stderr log line; CI greps for `ERROR` to assert a
/// clean run, so levels are part of the contract (INFO/WARN/ERROR).
fn log_line(level: &str, message: &str) {
    eprintln!("serve [{level}] {message}");
}
