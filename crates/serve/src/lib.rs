//! # apex-serve — hardened multi-tenant DSE daemon
//!
//! `apex serve` turns the batch APEX pipeline into a long-running
//! service: clients submit DFG-text sweep jobs over a newline-JSON TCP
//! protocol, the daemon runs them as supervised jobs on the
//! [`apex_par::WorkerPool`], and clients poll status and fetch results.
//! Everything is `std`-only, matching the workspace's offline
//! constraint.
//!
//! The point of the crate is the **robustness envelope**, not the
//! transport:
//!
//! * **admission control + backpressure** — a bounded queue; past the
//!   limit submissions are shed with a structured `overloaded` response
//!   carrying a `retry_after_ms` hint (never unbounded queueing);
//! * **per-request deadlines** — plumbed into the existing
//!   [`apex_fault::StageBudget`] cooperative cancellation;
//! * **multi-tenant caching** — each tenant's variant builds are cached
//!   in a private namespace of the content-addressed store
//!   ([`apex_core::VariantCache::namespaced`]), with a shared LRU byte
//!   cap;
//! * **slow-client defense** — idle/read/write timeouts and a bounded
//!   line length on every connection; socket I/O runs on connection
//!   threads, never pool workers, so a trickling client cannot wedge a
//!   job;
//! * **crash safety** — admissions are write-ahead journaled (the PR 4
//!   sweep journal); a killed daemon restarted with `--resume` re-runs
//!   exactly the unfinished jobs and serves concluded ones from the
//!   journal, byte-identically;
//! * **graceful drain** — SIGINT/SIGTERM (via `apex_fault::interrupt`)
//!   or the `drain` op stops admissions, finishes or checkpoints
//!   running jobs, flushes, and reports unfinished work for exit code 3;
//! * **testable failure paths** — `serve::accept_error`,
//!   `serve::slow_client`, `serve::mid_job_kill` and
//!   `serve::cache_evict_race` failpoints under `APEX_FAILPOINTS`.
//!
//! Wire protocol: see `DESIGN.md` §7 and [`proto`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod runner;
pub mod server;
pub mod state;

pub use runner::{DseRunner, JobRunner, JobSpec};
pub use server::{default_journal, RunSummary, ServeConfig, Server};
pub use state::{job_key, Admission, JobState, JobTable, PendingJob};
