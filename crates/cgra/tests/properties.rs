//! Property tests on the CGRA backend: place-and-route soundness for
//! randomly generated applications.

use apex_cgra::{
    gather_stats, generate_bitstream, place, route, route_reference, simulate_from_bitstream,
    simulate_from_bitstream_reference, verify_routed, Fabric, FabricConfig, PlaceOptions,
    RouteOptions, TileKind,
};
use apex_ir::{Graph, Op};
use apex_map::map_application;
use apex_pe::baseline_pe;
use apex_rewrite::standard_ruleset;
use proptest::prelude::*;

fn arb_app() -> impl Strategy<Value = Graph> {
    let spec = prop::collection::vec((0u8..5, any::<u16>(), any::<u16>()), 4..40);
    spec.prop_map(|ops| {
        let mut g = Graph::new("prop_app");
        let mut pool = vec![g.input(), g.input(), g.input(), g.input()];
        for (sel, x, y) in ops {
            let a = pool[(x as usize) % pool.len()];
            let b = pool[(y as usize) % pool.len()];
            let n = match sel {
                0 => g.add(Op::Add, &[a, b]),
                1 => g.add(Op::Mul, &[a, b]),
                2 => g.add(Op::Sub, &[a, b]),
                3 => g.add(Op::Umin, &[a, b]),
                _ => {
                    let c = g.constant(x);
                    g.add(Op::Add, &[a, c])
                }
            };
            pool.push(n);
        }
        // a couple of outputs
        let n = pool.len();
        let last = pool[n - 1];
        let second = pool[n - 2];
        g.output(last);
        if second != last {
            g.output(second);
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_apps_place_route_and_verify(app in arb_app(), seed: u64) {
        let pe = baseline_pe();
        let (rules, report) = standard_ruleset(&pe.datapath, &[], &[&app]).unwrap();
        prop_assert!(report.missing.is_empty());
        let design = map_application(&app, &pe.datapath, &rules).unwrap();
        let fabric = Fabric::new(FabricConfig::default());
        let placement = place(
            &design.netlist,
            &fabric,
            &PlaceOptions { moves: 2_000, seed, ..PlaceOptions::default() },
        )
        .unwrap();
        let routing = route(
            &design.netlist,
            &rules,
            &fabric,
            &placement,
            &RouteOptions::default(),
        )
        .unwrap();
        // the stand-in for VCS simulation of the configured array
        verify_routed(&design.netlist, &rules, &fabric, &placement, &routing).unwrap();

        // stats are internally consistent
        let stats = gather_stats(&design.netlist, &fabric, &placement, &routing);
        prop_assert_eq!(stats.pe_tiles, design.netlist.pe_count());
        prop_assert!(stats.total_hops >= routing.routes.len().saturating_sub(
            routing.routes.iter().filter(|r| r.hops() == 0).count()
        ));

        // every PE landed on a PE tile
        for (i, node) in design.netlist.nodes.iter().enumerate() {
            if matches!(node.kind, apex_map::NetKind::Pe(_)) {
                let t = placement.tile_of_node[i].unwrap();
                prop_assert_eq!(fabric.kind(t), TileKind::Pe);
            }
        }

        // bitstream generation is total and deterministic
        let b1 = generate_bitstream(&design.netlist, &rules, &pe.datapath, &fabric, &placement, &routing);
        let b2 = generate_bitstream(&design.netlist, &rules, &pe.datapath, &fabric, &placement, &routing);
        prop_assert_eq!(b1, b2);
    }

    #[test]
    fn placement_seeds_change_layout_not_legality(app in arb_app()) {
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app]).unwrap();
        let design = map_application(&app, &pe.datapath, &rules).unwrap();
        let fabric = Fabric::new(FabricConfig::default());
        for seed in [1u64, 999, 424242] {
            let p = place(
                &design.netlist,
                &fabric,
                &PlaceOptions { moves: 1_000, seed, ..PlaceOptions::default() },
            )
            .unwrap();
            let r = route(&design.netlist, &rules, &fabric, &p, &RouteOptions::default()).unwrap();
            verify_routed(&design.netlist, &rules, &fabric, &p, &r).unwrap();
        }
    }

    /// The CSR engine in full-reroute mode is bit-identical to the
    /// retained reference router — same routes, iteration counts,
    /// overflow registers, and errors — across randomized applications,
    /// placements, and track capacities.
    #[test]
    fn csr_router_matches_reference(
        app in arb_app(),
        seed: u64,
        wt in 2usize..=5,
        bt in 2usize..=5,
    ) {
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app]).unwrap();
        let design = map_application(&app, &pe.datapath, &rules).unwrap();
        let fabric = Fabric::new(FabricConfig {
            word_tracks: wt,
            bit_tracks: bt,
            ..FabricConfig::default()
        });
        let placement = place(
            &design.netlist,
            &fabric,
            &PlaceOptions { moves: 1_000, seed, ..PlaceOptions::default() },
        )
        .unwrap();
        let full = RouteOptions { incremental: false, ..RouteOptions::default() };
        let fast = route(&design.netlist, &rules, &fabric, &placement, &full);
        let reference = route_reference(&design.netlist, &rules, &fabric, &placement, &full);
        prop_assert_eq!(fast, reference);
    }

    /// Incremental rip-up never produces an illegal routing, and on
    /// single-round convergence (round one is shared with the reference
    /// by construction) it is bit-identical to the reference engine.
    #[test]
    fn incremental_routing_is_sound(
        app in arb_app(),
        seed: u64,
        wt in 2usize..=5,
        bt in 2usize..=5,
    ) {
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app]).unwrap();
        let design = map_application(&app, &pe.datapath, &rules).unwrap();
        let fabric = Fabric::new(FabricConfig {
            word_tracks: wt,
            bit_tracks: bt,
            ..FabricConfig::default()
        });
        let placement = place(
            &design.netlist,
            &fabric,
            &PlaceOptions { moves: 1_000, seed, ..PlaceOptions::default() },
        )
        .unwrap();
        let incremental = route(
            &design.netlist,
            &rules,
            &fabric,
            &placement,
            &RouteOptions::default(),
        );
        if let Ok(r) = &incremental {
            verify_routed(&design.netlist, &rules, &fabric, &placement, r).unwrap();
        }
        let reference = route_reference(
            &design.netlist,
            &rules,
            &fabric,
            &placement,
            &RouteOptions::default(),
        );
        if matches!(&reference, Ok(r) if r.iterations == 1) {
            prop_assert_eq!(incremental, reference);
        }
    }

    /// The table-compiled fabric simulator agrees exactly with the
    /// retained decode-per-access interpreter on randomized bitstream
    /// simulations — any cycle count, any PE latency.
    #[test]
    fn compiled_bitstream_sim_matches_reference(
        app in arb_app(),
        seed: u64,
        n_cycles in 0usize..6,
        pe_latency in 0u32..3,
    ) {
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app]).unwrap();
        let design = map_application(&app, &pe.datapath, &rules).unwrap();
        let fabric = Fabric::new(FabricConfig::default());
        let placement = place(
            &design.netlist,
            &fabric,
            &PlaceOptions { moves: 1_000, seed, ..PlaceOptions::default() },
        )
        .unwrap();
        let routing =
            route(&design.netlist, &rules, &fabric, &placement, &RouteOptions::default()).unwrap();
        let bitstream = generate_bitstream(
            &design.netlist,
            &rules,
            &pe.datapath,
            &fabric,
            &placement,
            &routing,
        );
        let n_in = design
            .netlist
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, apex_map::NetKind::WordInput))
            .count();
        let streams: Vec<Vec<u16>> = (0..n_in)
            .map(|i| {
                (0..n_cycles)
                    .map(|t| (seed as u16)
                        .wrapping_mul(31)
                        .wrapping_add(i as u16 * 17 + t as u16 * 7))
                    .collect()
            })
            .collect();
        let compiled = simulate_from_bitstream(
            &design.netlist, &rules, &pe.datapath, &placement, &bitstream,
            &streams, &[], pe_latency,
        );
        let reference = simulate_from_bitstream_reference(
            &design.netlist, &rules, &pe.datapath, &placement, &bitstream,
            &streams, &[], pe_latency,
        );
        prop_assert_eq!(compiled, reference);
    }
}
