//! CGRA fabric model (paper Section 2, Fig. 1).
//!
//! A grid of PE and memory tiles plus a top row of I/O tiles. Every tile
//! carries a switch box with five 16-bit and five 1-bit routing tracks per
//! direction; PE tiles add connection boxes for each PE input. Memory
//! tiles hold the two-bank SRAMs the applications stream through.

use serde::{Deserialize, Serialize};

/// Kind of a fabric tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TileKind {
    /// Processing-element tile (PE core + register file + CBs + SB).
    Pe,
    /// Memory tile (two 2 KB SRAM banks + SB).
    Mem,
    /// I/O tile on the array boundary.
    Io,
}

/// Fabric construction parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// Array columns (paper: 32).
    pub width: usize,
    /// Array rows of PE/MEM tiles (paper: 16), plus one I/O row on top.
    pub height: usize,
    /// Every n-th column is a memory column (AHA-style).
    pub mem_column_stride: usize,
    /// 16-bit routing tracks per direction per switch box (paper: 5).
    pub word_tracks: usize,
    /// 1-bit routing tracks per direction.
    pub bit_tracks: usize,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            width: 32,
            height: 16,
            mem_column_stride: 5,
            word_tracks: 5,
            bit_tracks: 5,
        }
    }
}

/// Identifier of a tile (row-major; row 0 is the I/O row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TileId(pub u32);

/// The instantiated fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fabric {
    /// Construction parameters.
    pub config: FabricConfig,
    tiles: Vec<TileKind>,
}

impl Fabric {
    /// Builds a fabric from a configuration.
    ///
    /// # Panics
    /// Panics on zero dimensions.
    pub fn new(config: FabricConfig) -> Self {
        assert!(config.width > 0 && config.height > 0, "empty fabric");
        let mut tiles = Vec::with_capacity(config.width * (config.height + 1));
        for _ in 0..config.width {
            tiles.push(TileKind::Io);
        }
        for _row in 0..config.height {
            for col in 0..config.width {
                let is_mem = config.mem_column_stride > 0
                    && col % config.mem_column_stride == config.mem_column_stride - 1;
                tiles.push(if is_mem { TileKind::Mem } else { TileKind::Pe });
            }
        }
        Fabric { config, tiles }
    }

    /// Total number of tiles (including the I/O row).
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// Whether the fabric has no tiles.
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// Tile kind.
    pub fn kind(&self, t: TileId) -> TileKind {
        self.tiles[t.0 as usize]
    }

    /// The (row, col) coordinates of a tile.
    pub fn coords(&self, t: TileId) -> (usize, usize) {
        let idx = t.0 as usize;
        (idx / self.config.width, idx % self.config.width)
    }

    /// The tile at (row, col).
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn at(&self, row: usize, col: usize) -> TileId {
        assert!(row <= self.config.height && col < self.config.width);
        TileId((row * self.config.width + col) as u32)
    }

    /// All tiles of a kind.
    pub fn tiles_of(&self, kind: TileKind) -> Vec<TileId> {
        (0..self.tiles.len() as u32)
            .map(TileId)
            .filter(|&t| self.kind(t) == kind)
            .collect()
    }

    /// Orthogonal neighbours of a tile.
    pub fn neighbours(&self, t: TileId) -> Vec<TileId> {
        let (r, c) = self.coords(t);
        let mut out = Vec::with_capacity(4);
        if r > 0 {
            out.push(self.at(r - 1, c));
        }
        if r < self.config.height {
            out.push(self.at(r + 1, c));
        }
        if c > 0 {
            out.push(self.at(r, c - 1));
        }
        if c + 1 < self.config.width {
            out.push(self.at(r, c + 1));
        }
        out
    }

    /// Manhattan distance between two tiles.
    pub fn distance(&self, a: TileId, b: TileId) -> usize {
        let (ra, ca) = self.coords(a);
        let (rb, cb) = self.coords(b);
        ra.abs_diff(rb) + ca.abs_diff(cb)
    }

    /// Directed link id between adjacent tiles (used for routing
    /// capacity). Links are indexed `from * len + to`.
    pub fn link(&self, from: TileId, to: TileId) -> usize {
        from.0 as usize * self.len() + to.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_fabric_matches_paper_dimensions() {
        let f = Fabric::new(FabricConfig::default());
        assert_eq!(f.config.width, 32);
        assert_eq!(f.config.height, 16);
        // 32 IO tiles + 32x16 array
        assert_eq!(f.len(), 32 * 17);
        assert_eq!(f.tiles_of(TileKind::Io).len(), 32);
    }

    #[test]
    fn mem_columns_follow_stride() {
        let f = Fabric::new(FabricConfig::default());
        let mems = f.tiles_of(TileKind::Mem);
        // columns 4, 9, 14, 19, 24, 29 → 6 columns × 16 rows
        assert_eq!(mems.len(), 6 * 16);
        for m in mems {
            let (r, c) = f.coords(m);
            assert!(r >= 1);
            assert_eq!(c % 5, 4);
        }
    }

    #[test]
    fn pe_capacity_fits_the_paper_workloads() {
        let f = Fabric::new(FabricConfig::default());
        // unsharp needs 303 PEs in Table 3
        assert!(f.tiles_of(TileKind::Pe).len() >= 303);
    }

    #[test]
    fn neighbours_and_distance() {
        let f = Fabric::new(FabricConfig::default());
        let t = f.at(3, 5);
        let n = f.neighbours(t);
        assert_eq!(n.len(), 4);
        for x in n {
            assert_eq!(f.distance(t, x), 1);
        }
        let corner = f.at(0, 0);
        assert_eq!(f.neighbours(corner).len(), 2);
    }

    #[test]
    fn coords_round_trip() {
        let f = Fabric::new(FabricConfig::default());
        for idx in [0u32, 31, 32, 100, (32 * 17 - 1) as u32] {
            let (r, c) = f.coords(TileId(idx));
            assert_eq!(f.at(r, c), TileId(idx));
        }
    }
}
