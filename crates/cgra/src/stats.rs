//! Post-place-and-route statistics, area/energy roll-up, and timing —
//! the quantities behind Table 2, Table 3, and Figures 11–16.

use crate::fabric::{Fabric, TileId};
use crate::place::{place_class, PlaceClass, Placement};
use crate::route::Routing;
use apex_map::{NetKind, Netlist};
use apex_pe::PeSpec;
use apex_rewrite::RuleSet;
use apex_tech::TechModel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Resource utilization after place-and-route (the paper's Table 3 row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PnrStats {
    /// PE tiles whose compute core is used (`#PE`).
    pub pe_tiles: usize,
    /// Register files used as FIFOs (`#RF`).
    pub rf_tiles: usize,
    /// Memory tiles streaming application data (`#MEM`).
    pub mem_tiles: usize,
    /// I/O tiles (`#IO`).
    pub io_tiles: usize,
    /// Pipeline registers absorbed into switch boxes (`#Reg`).
    pub sb_regs: usize,
    /// Tiles that only forward data (`#Routing tiles`).
    pub routing_tiles: usize,
    /// Total switch-box hops across all routes.
    pub total_hops: usize,
    /// Total Manhattan wirelength of the placement.
    pub wirelength: usize,
}

/// Gathers utilization from a placed and routed design.
pub fn gather_stats(
    netlist: &Netlist,
    fabric: &Fabric,
    placement: &Placement,
    routing: &Routing,
) -> PnrStats {
    let mut pe_tiles = 0;
    let mut rf_tiles = 0;
    let mut mem_used: BTreeSet<TileId> = BTreeSet::new();
    let mut io_used: BTreeSet<TileId> = BTreeSet::new();
    let mut functional: BTreeSet<TileId> = BTreeSet::new();
    for (i, node) in netlist.nodes.iter().enumerate() {
        let Some(class) = place_class(&node.kind) else {
            continue;
        };
        // an unplaced node contributes nothing to utilization; stats stay
        // panic-free even on a partial placement
        let Some(tile) = placement.tile_of_node[i] else {
            continue;
        };
        functional.insert(tile);
        match class {
            PlaceClass::PeSlot => pe_tiles += 1,
            PlaceClass::RfSlot => rf_tiles += 1,
            PlaceClass::MemSlot => {
                mem_used.insert(tile);
            }
            PlaceClass::IoSlot => {
                io_used.insert(tile);
            }
        }
    }
    let mut traversed: BTreeSet<TileId> = BTreeSet::new();
    for r in &routing.routes {
        for &t in &r.path {
            traversed.insert(t);
        }
    }
    let routing_tiles = traversed.difference(&functional).count();
    PnrStats {
        pe_tiles,
        rf_tiles,
        mem_tiles: mem_used.len(),
        io_tiles: io_used.len(),
        sb_regs: routing.sb_regs(),
        routing_tiles,
        total_hops: routing.signal_hops(fabric),
        wirelength: placement.wirelength,
    }
}

/// CGRA area by component, µm² (Fig. 15's stacking).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// PE cores (instances × core area).
    pub pe: f64,
    /// Register files used as FIFOs.
    pub rf: f64,
    /// Switch boxes of every active tile plus their pipeline registers.
    pub sb: f64,
    /// Connection boxes of used PE tiles.
    pub cb: f64,
    /// Memory tiles.
    pub mem: f64,
    /// I/O tiles.
    pub io: f64,
}

impl AreaBreakdown {
    /// Total area.
    pub fn total(&self) -> f64 {
        self.pe + self.rf + self.sb + self.cb + self.mem + self.io
    }

    /// Interconnect share (SB + CB).
    pub fn interconnect(&self) -> f64 {
        self.sb + self.cb
    }
}

/// Rolls up CGRA area for an application (used tiles only, as the paper
/// evaluates homogeneous arrays by the resources an application occupies).
pub fn cgra_area(
    netlist: &Netlist,
    stats: &PnrStats,
    pe: &PeSpec,
    tech: &TechModel,
) -> AreaBreakdown {
    let f = &tech.fabric;
    let pe_core = pe.area(tech).total();
    let mut rf = 0.0;
    for node in &netlist.nodes {
        if let NetKind::Fifo(d) = node.kind {
            rf += f64::from(d) * tech.area(apex_ir::OpKind::Fifo) + 60.0; // storage + addressing
        }
    }
    let active_tiles =
        stats.pe_tiles.max(stats.rf_tiles) + stats.mem_tiles + stats.io_tiles + stats.routing_tiles;
    let cb_per_pe = pe.word_input_count() as f64 * f.cb_word_area
        + pe.bit_input_count() as f64 * f.cb_bit_area;
    AreaBreakdown {
        pe: stats.pe_tiles as f64 * pe_core,
        rf,
        sb: active_tiles as f64 * f.sb_area + stats.sb_regs as f64 * f.sb_reg_area,
        cb: stats.pe_tiles as f64 * cb_per_pe,
        mem: stats.mem_tiles as f64 * f.mem_tile_area,
        io: stats.io_tiles as f64 * f.io_tile_area,
    }
}

/// CGRA energy per steady-state cycle (one unrolled output set), pJ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// PE cores.
    pub pe: f64,
    /// Register-file FIFOs.
    pub rf: f64,
    /// Switch boxes (data movement + idle + pipeline registers).
    pub sb: f64,
    /// Connection boxes.
    pub cb: f64,
    /// Memory accesses.
    pub mem: f64,
}

impl EnergyBreakdown {
    /// Total energy per cycle.
    pub fn total(&self) -> f64 {
        self.pe + self.rf + self.sb + self.cb + self.mem
    }
}

/// Rolls up per-cycle energy for a running application.
pub fn cgra_energy_per_cycle(
    netlist: &Netlist,
    rules: &RuleSet,
    stats: &PnrStats,
    pe: &PeSpec,
    tech: &TechModel,
) -> EnergyBreakdown {
    let f = &tech.fabric;
    let mut pe_energy = 0.0;
    let mut rf_energy = 0.0;
    let mut cb_energy = 0.0;
    let mut word_io = 0usize;
    for node in &netlist.nodes {
        match &node.kind {
            NetKind::Pe(inst) => {
                let rule = &rules.rules[inst.rule as usize];
                let cfg = rule.instantiate(&inst.payloads);
                pe_energy += pe.energy(&cfg, tech);
                cb_energy += node.inputs.len() as f64 * f.cb_energy;
            }
            NetKind::Fifo(_) => {
                // one read + one write per cycle
                rf_energy += 2.0 * tech.energy(apex_ir::OpKind::Fifo) + 0.05;
            }
            NetKind::WordInput | NetKind::WordOutput => word_io += 1,
            _ => {}
        }
    }
    let active_tiles =
        stats.pe_tiles.max(stats.rf_tiles) + stats.mem_tiles + stats.io_tiles + stats.routing_tiles;
    EnergyBreakdown {
        pe: pe_energy,
        rf: rf_energy,
        sb: stats.total_hops as f64 * f.sb_energy_per_hop
            + active_tiles as f64 * f.sb_idle_energy
            + stats.sb_regs as f64 * f.sb_reg_energy,
        cb: cb_energy,
        mem: word_io as f64 * f.mem_access_energy,
    }
}

/// Whether tile outputs are registered (post-pipelining designs register
/// every PE output, decoupling PE delay from routing delay).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputTiming {
    /// PE outputs feed routes combinationally (pre-pipelining).
    Combinational,
    /// PE outputs are registered (post-pipelining).
    Registered,
}

/// Achievable clock period of the placed-and-routed design, ns.
///
/// The longest unbroken routing segment (switch-box pipeline registers
/// split segments) either adds to the PE's cycle delay (combinational
/// outputs) or forms its own timing path (registered outputs).
pub fn achieved_period(
    routing: &Routing,
    pe: &PeSpec,
    tech: &TechModel,
    timing: OutputTiming,
) -> f64 {
    const HOP_DELAY: f64 = 0.075;
    let worst_segment = routing
        .routes
        .iter()
        .map(|r| {
            let segments = r.regs as usize + 1;
            r.hops().div_ceil(segments)
        })
        .max()
        .unwrap_or(0);
    let route_delay = worst_segment as f64 * HOP_DELAY;
    match timing {
        OutputTiming::Combinational => pe.cycle_delay(tech) + route_delay,
        OutputTiming::Registered => pe.cycle_delay(tech).max(route_delay),
    }
}

/// Cycles to process one frame/layer: steady-state issue plus pipeline
/// fill latency.
pub fn runtime_cycles(steady_state_cycles: u64, app_latency: u32) -> u64 {
    steady_state_cycles + u64::from(app_latency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;
    use crate::place::{place, PlaceOptions};
    use crate::route::{route, RouteOptions};
    use apex_map::map_application;
    use apex_pe::baseline_pe;
    use apex_rewrite::standard_ruleset;

    fn pnr_gaussian() -> (Netlist, RuleSet, PeSpec, PnrStats, Routing) {
        let app = apex_apps::gaussian();
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app.graph]).unwrap();
        let d = map_application(&app.graph, &pe.datapath, &rules).unwrap();
        let fabric = Fabric::new(FabricConfig::default());
        let placement = place(&d.netlist, &fabric, &PlaceOptions::default()).unwrap();
        let routing =
            route(&d.netlist, &rules, &fabric, &placement, &RouteOptions::default()).unwrap();
        let stats = gather_stats(&d.netlist, &fabric, &placement, &routing);
        (d.netlist, rules, pe, stats, routing)
    }

    #[test]
    fn stats_reflect_netlist_contents() {
        let (netlist, _, _, stats, _) = pnr_gaussian();
        assert_eq!(stats.pe_tiles, netlist.pe_count());
        assert_eq!(stats.rf_tiles, 0, "unpipelined design has no FIFOs");
        assert!(stats.mem_tiles > 0);
        assert!(stats.io_tiles > 0);
        assert!(stats.total_hops > 0);
    }

    #[test]
    fn area_components_are_positive_and_dominated_by_interconnect_or_pe() {
        let (netlist, _, pe, stats, _) = pnr_gaussian();
        let tech = TechModel::default();
        let area = cgra_area(&netlist, &stats, &pe, &tech);
        assert!(area.pe > 0.0 && area.sb > 0.0 && area.cb > 0.0 && area.mem > 0.0);
        assert!(area.total() > area.pe);
        // Fig. 15: interconnect is a significant CGRA cost
        assert!(area.interconnect() > 0.2 * area.pe);
    }

    #[test]
    fn energy_components_are_positive() {
        let (netlist, rules, pe, stats, _) = pnr_gaussian();
        let tech = TechModel::default();
        let e = cgra_energy_per_cycle(&netlist, &rules, &stats, &pe, &tech);
        assert!(e.pe > 0.0 && e.sb > 0.0 && e.cb > 0.0 && e.mem > 0.0);
        assert!(e.total() < 10_000.0, "sane magnitude: {e:?}");
    }

    #[test]
    fn unpipelined_period_exceeds_target() {
        let (_, _, pe, _, routing) = pnr_gaussian();
        let tech = TechModel::default();
        let period = achieved_period(&routing, &pe, &tech, OutputTiming::Combinational);
        // baseline PE is single-op and fast, but routes add delay
        assert!(period > pe.cycle_delay(&tech));
        let registered = achieved_period(&routing, &pe, &tech, OutputTiming::Registered);
        assert!(registered <= period);
    }

    #[test]
    fn runtime_includes_fill_latency() {
        assert_eq!(runtime_cycles(1000, 25), 1025);
    }
}
