//! # apex-cgra — CGRA fabric generation, place-and-route, and evaluation
//!
//! The backend of the APEX flow (paper Sections 2 and 4, evaluated in
//! Section 5): a 32×16 array of PE and memory tiles with a statically
//! configured interconnect (five 16-bit and five 1-bit tracks per switch
//! box, connection boxes per PE input), onto which mapped netlists are
//! placed (simulated annealing), routed (negotiated-congestion maze
//! routing), configured (bitstream generation), and evaluated for area,
//! energy, and achievable clock period.
//!
//! Post-route verification ([`verify_routed`]) plus the netlist's
//! cycle-accurate simulator stand in for the paper's Synopsys VCS
//! simulation of the configured Verilog (DESIGN.md §3).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bitstream;
mod fabric;
mod fabric_sim;
mod place;
mod route;
mod stats;
mod verilog;

pub use bitstream::{generate_bitstream, pack_config, unpack_config, Bitstream, TileConfig};
pub use fabric::{Fabric, FabricConfig, TileId, TileKind};
pub use fabric_sim::{
    decode_pe_configs, simulate_from_bitstream, simulate_from_bitstream_reference, FabricSimError,
};
pub use place::{
    place, place_cached, place_class, placement_edges, trace_through_regs, PlaceClass,
    PlaceError, PlaceOptions, Placement,
};
pub use route::{
    connections, route, route_reference, verify_routed, RouteError, RouteGraph, RouteOptions,
    RoutedEdge, Routing,
};
pub use verilog::emit_cgra_verilog;
pub use stats::{
    achieved_period, cgra_area, cgra_energy_per_cycle, gather_stats, runtime_cycles,
    AreaBreakdown, EnergyBreakdown, OutputTiming, PnrStats,
};
