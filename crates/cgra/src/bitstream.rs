//! Configuration bitstream generation (paper Section 4, step 3c).
//!
//! Packs every tile's configuration: PE tiles get their datapath
//! configuration (op selects, mux selects, constants) in the same bit
//! layout the Verilog emitter uses; switch boxes get one entry per routed
//! hop (input side/track → output side/track); connection boxes get the
//! selected track per PE input.

use crate::fabric::{Fabric, TileId};
use crate::place::Placement;
use crate::route::Routing;
use apex_ir::Op;
use apex_map::{NetKind, Netlist};
use apex_merge::{DatapathConfig, MergedDatapath};
use apex_rewrite::RuleSet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of a single tile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TileConfig {
    /// A PE tile: packed datapath configuration bits.
    Pe {
        /// Packed little-endian configuration bits.
        bits: Vec<u8>,
    },
    /// A switch box: routed crossings `(from_tile, to_tile, track)`.
    Sb {
        /// Crossings through this tile.
        crossings: Vec<(TileId, TileId, u8)>,
    },
    /// A memory or I/O tile streaming a number of values.
    Stream {
        /// Values streamed per cycle.
        streams: u8,
    },
}

/// The full-array bitstream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitstream {
    /// Per-tile configuration (only configured tiles appear).
    pub tiles: BTreeMap<TileId, Vec<TileConfig>>,
    /// Total configuration bits.
    pub total_bits: usize,
}

/// Packs a datapath configuration into bits, mirroring the layout of
/// `apex_pe::config_bits` / the Verilog emitter.
pub fn pack_config(dp: &MergedDatapath, cfg: &DatapathConfig) -> Vec<u8> {
    let mut bits: Vec<bool> = Vec::new();
    let push_val = |bits: &mut Vec<bool>, value: u64, width: usize| {
        for k in 0..width {
            bits.push((value >> k) & 1 == 1);
        }
    };
    let width_for = |choices: usize| -> usize {
        if choices <= 1 {
            0
        } else {
            (usize::BITS - (choices - 1).leading_zeros()) as usize
        }
    };
    for (i, node) in dp.nodes.iter().enumerate() {
        let nc = cfg.node_cfg.get(i).and_then(Option::as_ref);
        // op select
        let op_idx = nc
            .and_then(|nc| {
                node.ops.iter().position(|o| match (o, &nc.op) {
                    (Op::Const(_), Op::Const(_)) => true,
                    (Op::BitConst(_), Op::BitConst(_)) => true,
                    (Op::Lut(_), Op::Lut(_)) => true,
                    (a, b) => a == b,
                })
            })
            .unwrap_or(0);
        push_val(&mut bits, op_idx as u64, width_for(node.ops.len()));
        // payloads
        for (k, op) in node.ops.iter().enumerate() {
            let active = nc.filter(|_| k == op_idx);
            match op {
                Op::Const(_) => {
                    let v = match active.map(|nc| nc.op) {
                        Some(Op::Const(v)) => v,
                        _ => 0,
                    };
                    push_val(&mut bits, u64::from(v), 16);
                }
                Op::BitConst(_) => {
                    let v = matches!(active.map(|nc| nc.op), Some(Op::BitConst(true)));
                    push_val(&mut bits, u64::from(v), 1);
                }
                Op::Lut(_) => {
                    let v = match active.map(|nc| nc.op) {
                        Some(Op::Lut(t)) => t,
                        _ => 0,
                    };
                    push_val(&mut bits, u64::from(v), 8);
                }
                _ => {}
            }
        }
        // port selects
        for (p, cands) in node.port_candidates.iter().enumerate() {
            let sel = nc
                .and_then(|nc| nc.port_sel.get(p))
                .copied()
                .unwrap_or(0);
            push_val(&mut bits, u64::from(sel), width_for(cands.len()));
        }
    }
    // output selections
    let total_sources = dp.nodes.len() + dp.word_inputs + dp.bit_inputs;
    let w = width_for(total_sources);
    for o in 0..dp.word_outputs {
        let v = cfg
            .word_out_sel
            .get(o)
            .map(|s| source_index(dp, *s))
            .unwrap_or(0);
        push_val(&mut bits, v as u64, w);
    }
    for o in 0..dp.bit_outputs {
        let v = cfg
            .bit_out_sel
            .get(o)
            .map(|s| source_index(dp, *s))
            .unwrap_or(0);
        push_val(&mut bits, v as u64, w);
    }
    // pack into bytes
    let mut bytes = vec![0u8; bits.len().div_ceil(8)];
    for (k, b) in bits.iter().enumerate() {
        if *b {
            bytes[k / 8] |= 1 << (k % 8);
        }
    }
    bytes
}

/// Decodes a packed configuration back into a [`DatapathConfig`].
///
/// The inverse of [`pack_config`]: node activity cannot be recovered from
/// bits alone (an inactive node and an active node configured to op 0 with
/// zero selections pack identically), so `template` supplies the activity
/// mask — everything else (op selects, payloads, mux selections, output
/// selections) is taken from `bytes`. Used by the fabric-simulation path
/// to prove the bitstream is faithful: decode-then-simulate must equal
/// the golden model.
///
/// # Panics
/// Panics if `bytes` is shorter than the datapath's configuration width.
pub fn unpack_config(
    dp: &MergedDatapath,
    bytes: &[u8],
    template: &DatapathConfig,
) -> DatapathConfig {
    let mut pos = 0usize;
    let mut take = |width: usize| -> u64 {
        let mut v = 0u64;
        for k in 0..width {
            let bit = pos + k;
            assert!(bit / 8 < bytes.len(), "bitstream too short");
            if (bytes[bit / 8] >> (bit % 8)) & 1 == 1 {
                v |= 1 << k;
            }
        }
        pos += width;
        v
    };
    let width_for = |choices: usize| -> usize {
        if choices <= 1 {
            0
        } else {
            (usize::BITS - (choices - 1).leading_zeros()) as usize
        }
    };
    let mut cfg = template.clone();
    for (i, node) in dp.nodes.iter().enumerate() {
        let op_idx = take(width_for(node.ops.len())) as usize;
        // payloads, in op order; only the selected op's payload applies
        let mut decoded_op = *node.ops.get(op_idx).unwrap_or(&node.ops[0]);
        for (k, op) in node.ops.iter().enumerate() {
            match op {
                Op::Const(_) => {
                    let v = take(16) as u16;
                    if k == op_idx {
                        decoded_op = Op::Const(v);
                    }
                }
                Op::BitConst(_) => {
                    let v = take(1) == 1;
                    if k == op_idx {
                        decoded_op = Op::BitConst(v);
                    }
                }
                Op::Lut(_) => {
                    let v = take(8) as u8;
                    if k == op_idx {
                        decoded_op = Op::Lut(v);
                    }
                }
                _ => {}
            }
        }
        let mut sels = Vec::with_capacity(node.port_candidates.len());
        for cands in &node.port_candidates {
            sels.push(take(width_for(cands.len())) as u32);
        }
        if let Some(nc) = cfg.node_cfg[i].as_mut() {
            nc.op = decoded_op;
            for (p, sel) in nc.port_sel.iter_mut().enumerate() {
                *sel = sels[p];
            }
        }
    }
    let total_sources = dp.nodes.len() + dp.word_inputs + dp.bit_inputs;
    let w = width_for(total_sources);
    for o in 0..dp.word_outputs {
        let v = take(w) as usize;
        if let Some(slot) = cfg.word_out_sel.get_mut(o) {
            *slot = index_source(dp, v);
        }
    }
    for o in 0..dp.bit_outputs {
        let v = take(w) as usize;
        if let Some(slot) = cfg.bit_out_sel.get_mut(o) {
            *slot = index_source(dp, v);
        }
    }
    cfg
}

fn index_source(dp: &MergedDatapath, k: usize) -> apex_merge::DpSource {
    if k < dp.word_inputs {
        apex_merge::DpSource::WordInput(k as u16)
    } else if k < dp.word_inputs + dp.bit_inputs {
        apex_merge::DpSource::BitInput((k - dp.word_inputs) as u16)
    } else {
        apex_merge::DpSource::Node((k - dp.word_inputs - dp.bit_inputs) as u32)
    }
}

fn source_index(dp: &MergedDatapath, s: apex_merge::DpSource) -> usize {
    match s {
        apex_merge::DpSource::WordInput(k) => k as usize,
        apex_merge::DpSource::BitInput(k) => dp.word_inputs + k as usize,
        apex_merge::DpSource::Node(j) => dp.word_inputs + dp.bit_inputs + j as usize,
    }
}

/// Generates the array bitstream for a placed-and-routed design.
pub fn generate_bitstream(
    netlist: &Netlist,
    rules: &RuleSet,
    dp: &MergedDatapath,
    fabric: &Fabric,
    placement: &Placement,
    routing: &Routing,
) -> Bitstream {
    let mut tiles: BTreeMap<TileId, Vec<TileConfig>> = BTreeMap::new();
    let mut total_bits = 0usize;

    for (i, node) in netlist.nodes.iter().enumerate() {
        let Some(tile) = placement.tile_of_node[i] else {
            continue;
        };
        match &node.kind {
            NetKind::Pe(inst) => {
                let rule = &rules.rules[inst.rule as usize];
                let cfg = rule.instantiate(&inst.payloads);
                let bits = pack_config(dp, &cfg);
                total_bits += bits.len() * 8;
                tiles.entry(tile).or_default().push(TileConfig::Pe { bits });
            }
            NetKind::Fifo(d) => {
                // FIFO depth is a small config word on the tile's RF
                total_bits += 8;
                tiles
                    .entry(tile)
                    .or_default()
                    .push(TileConfig::Stream { streams: *d });
            }
            NetKind::WordInput | NetKind::BitInput | NetKind::WordOutput | NetKind::BitOutput => {
                total_bits += 4;
                tiles
                    .entry(tile)
                    .or_default()
                    .push(TileConfig::Stream { streams: 1 });
            }
            _ => {}
        }
    }

    // switch-box crossings: one track per distinct signal per link,
    // assigned deterministically in routing order. Dense per-(edge, word)
    // arrays over the CSR route graph carry the assignment state (a link
    // holds at most a few distinct signals, so a linear scan beats a map
    // probe); hops between non-adjacent tiles — impossible in an honest
    // routing — keep a sparse fallback with identical assignment rules
    let graph = crate::route::RouteGraph::new(fabric);
    let mut track_of: Vec<Vec<(u32, u8)>> = vec![Vec::new(); graph.n_edges() * 2];
    let mut next_track: Vec<u8> = vec![0; graph.n_edges() * 2];
    let mut sparse_track_of: BTreeMap<(usize, bool, u32), u8> = BTreeMap::new();
    let mut sparse_next: BTreeMap<(usize, bool), u8> = BTreeMap::new();
    let mut sb: BTreeMap<TileId, Vec<(TileId, TileId, u8)>> = BTreeMap::new();
    for r in &routing.routes {
        // tracks wrap within the capacity of the signal's own kind: bit
        // links have bit_tracks tracks, not word_tracks
        let cap = if r.word {
            fabric.config.word_tracks
        } else {
            fabric.config.bit_tracks
        }
        .max(1) as u8;
        for w in r.path.windows(2) {
            let t = match graph.edge_of(w[0], w[1]) {
                Some(e) => {
                    let idx = e * 2 + usize::from(r.word);
                    match track_of[idx].iter().find(|&&(p, _)| p == r.producer) {
                        Some(&(_, t)) => t,
                        None => {
                            let n = &mut next_track[idx];
                            let t = *n;
                            *n = n.wrapping_add(1) % cap;
                            track_of[idx].push((r.producer, t));
                            t
                        }
                    }
                }
                None => {
                    let link = fabric.link(w[0], w[1]);
                    *sparse_track_of
                        .entry((link, r.word, r.producer))
                        .or_insert_with(|| {
                            let n = sparse_next.entry((link, r.word)).or_insert(0);
                            let t = *n;
                            *n = n.wrapping_add(1) % cap;
                            t
                        })
                }
            };
            sb.entry(w[0]).or_default().push((w[0], w[1], t));
        }
    }
    for (tile, crossings) in sb {
        // each crossing: 2 bits side + ~3 bits track, in + out
        total_bits += crossings.len() * 10;
        tiles
            .entry(tile)
            .or_default()
            .push(TileConfig::Sb { crossings });
    }

    Bitstream { tiles, total_bits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;
    use crate::place::{place, PlaceOptions};
    use crate::route::{route, RouteOptions};
    use apex_map::map_application;
    use apex_pe::baseline_pe;
    use apex_rewrite::standard_ruleset;

    #[test]
    fn bitstream_is_deterministic_and_nonempty() {
        let app = apex_apps::gaussian();
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app.graph]).unwrap();
        let d = map_application(&app.graph, &pe.datapath, &rules).unwrap();
        let fabric = Fabric::new(FabricConfig::default());
        let placement = place(&d.netlist, &fabric, &PlaceOptions::default()).unwrap();
        let routing =
            route(&d.netlist, &rules, &fabric, &placement, &RouteOptions::default()).unwrap();
        let b1 = generate_bitstream(&d.netlist, &rules, &pe.datapath, &fabric, &placement, &routing);
        let b2 = generate_bitstream(&d.netlist, &rules, &pe.datapath, &fabric, &placement, &routing);
        assert_eq!(b1, b2);
        assert!(b1.total_bits > 0);
        // every PE instance contributed a PE tile config
        let pe_cfgs: usize = b1
            .tiles
            .values()
            .flatten()
            .filter(|t| matches!(t, TileConfig::Pe { .. }))
            .count();
        assert_eq!(pe_cfgs, d.netlist.pe_count());
    }

    #[test]
    fn pack_config_width_matches_cost_model() {
        let pe = baseline_pe();
        // an empty configuration still packs to the full config width
        let cfg = apex_merge::DatapathConfig {
            name: "empty".into(),
            node_cfg: vec![None; pe.datapath.nodes.len()],
            word_out_sel: vec![],
            bit_out_sel: vec![],
            word_input_map: vec![],
            bit_input_map: vec![],
            node_map: vec![],
        };
        let bytes = pack_config(&pe.datapath, &cfg);
        let expected = apex_pe::config_bits(&pe.datapath);
        assert_eq!(bytes.len(), expected.div_ceil(8));
    }

    #[test]
    fn pack_unpack_round_trips_every_stored_config() {
        use apex_ir::{Graph, Op};
        use apex_merge::{merge_all, MergeOptions};
        use apex_tech::TechModel;
        // a merged two-config datapath exercises op selects, payloads,
        // mux selections, and output selections
        let mut g1 = Graph::new("mac");
        let (a, b, c) = {
            let a = g1.input();
            let b = g1.input();
            let c = g1.input();
            (a, b, c)
        };
        let m = g1.add(Op::Mul, &[a, b]);
        let s = g1.add(Op::Add, &[m, c]);
        g1.output(s);
        let mut g2 = Graph::new("scale");
        let x = g2.input();
        let w = g2.constant(7);
        let p = g2.add(Op::Mul, &[x, w]);
        let d = g2.add(Op::Sub, &[p, x]);
        g2.output(d);
        let (dp, _) = merge_all(&[g1, g2], &TechModel::default(), &MergeOptions::default()).unwrap();
        for cfg in &dp.configs {
            let bytes = pack_config(&dp, cfg);
            let decoded = unpack_config(&dp, &bytes, cfg);
            assert_eq!(&decoded, cfg, "decode(encode(cfg)) == cfg");
        }
    }

    #[test]
    fn decoded_bitstream_simulates_identically() {
        use apex_ir::{Graph, Op};
        let mut g = Graph::new("aff");
        let x = g.input();
        let w = g.constant(13);
        let b = g.constant(5);
        let m = g.add(Op::Mul, &[x, w]);
        let s = g.add(Op::Add, &[m, b]);
        g.output(s);
        let dp = apex_merge::MergedDatapath::from_graph(&g);
        let cfg = &dp.configs[0];
        let decoded = unpack_config(&dp, &pack_config(&dp, cfg), cfg);
        for input in [0u16, 1, 99, 40_000] {
            let (a, _) = dp.evaluate(cfg, &[input], &[]).unwrap();
            let (b2, _) = dp.evaluate(&decoded, &[input], &[]).unwrap();
            assert_eq!(a, b2);
        }
    }

    #[test]
    fn distinct_constants_give_distinct_bitstreams() {
        use apex_ir::{Graph, Op};
        let mut g = Graph::new("scale");
        let a = g.input();
        let c = g.constant(7);
        let m = g.add(Op::Mul, &[a, c]);
        g.output(m);
        let dp = apex_merge::MergedDatapath::from_graph(&g);
        let mut cfg2 = dp.configs[0].clone();
        for nc in cfg2.node_cfg.iter_mut().flatten() {
            if matches!(nc.op, Op::Const(_)) {
                nc.op = Op::Const(9);
            }
        }
        assert_ne!(pack_config(&dp, &dp.configs[0]), pack_config(&dp, &cfg2));
    }
}
