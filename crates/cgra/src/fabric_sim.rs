//! Fabric simulation from the configuration bitstream — our substitute
//! for the paper's Synopsys VCS simulation of the configured CGRA Verilog
//! (Section 4, step 3c).
//!
//! [`simulate_from_bitstream`] *decodes* every PE tile's packed
//! configuration bits back into datapath configurations and runs the
//! cycle-accurate fabric simulation from the decoded state. Agreement
//! with the golden model therefore checks the whole chain:
//! rule instantiation → bit packing → decoding → execution.

use crate::bitstream::{unpack_config, Bitstream, TileConfig};
use crate::place::Placement;
use apex_map::{NetKind, Netlist, NetlistError};
use apex_merge::{DatapathConfig, MergedDatapath};
use apex_rewrite::RuleSet;
use std::collections::BTreeMap;

/// Errors while reconstructing the configuration state from a bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricSimError {
    /// A PE instance's tile has no packed PE configuration.
    MissingTileConfig {
        /// The unconfigured netlist node.
        node: u32,
    },
    /// The decoded netlist failed to simulate.
    Netlist(NetlistError),
}

impl std::fmt::Display for FabricSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricSimError::MissingTileConfig { node } => {
                write!(f, "node {node}: tile has no PE configuration in the bitstream")
            }
            FabricSimError::Netlist(e) => write!(f, "decoded netlist failed to simulate: {e}"),
        }
    }
}

impl std::error::Error for FabricSimError {}

impl From<NetlistError> for FabricSimError {
    fn from(e: NetlistError) -> Self {
        FabricSimError::Netlist(e)
    }
}

/// Decodes the per-PE configurations out of a bitstream.
///
/// Returns netlist-node → decoded configuration for every PE instance.
///
/// # Errors
/// Fails if a placed PE's tile carries no packed configuration.
pub fn decode_pe_configs(
    netlist: &Netlist,
    rules: &RuleSet,
    dp: &MergedDatapath,
    placement: &Placement,
    bitstream: &Bitstream,
) -> Result<BTreeMap<u32, DatapathConfig>, FabricSimError> {
    // tiles may host several configs (a PE plus streams); consume PE
    // configs per tile in node order, mirroring generation order
    let mut next_pe_cfg: BTreeMap<crate::fabric::TileId, usize> = BTreeMap::new();
    let mut out = BTreeMap::new();
    for (i, node) in netlist.nodes.iter().enumerate() {
        let NetKind::Pe(inst) = &node.kind else {
            continue;
        };
        let tile = placement.tile_of_node[i]
            .ok_or(FabricSimError::MissingTileConfig { node: i as u32 })?;
        let configs = bitstream
            .tiles
            .get(&tile)
            .ok_or(FabricSimError::MissingTileConfig { node: i as u32 })?;
        let idx = next_pe_cfg.entry(tile).or_insert(0);
        let bits = configs
            .iter()
            .filter_map(|c| match c {
                TileConfig::Pe { bits } => Some(bits),
                _ => None,
            })
            .nth(*idx)
            .ok_or(FabricSimError::MissingTileConfig { node: i as u32 })?;
        *idx += 1;
        let rule = &rules.rules[inst.rule as usize];
        let template = rule.instantiate(&inst.payloads);
        out.insert(i as u32, unpack_config(dp, bits, &template));
    }
    Ok(out)
}

/// Cycle-accurate fabric simulation driven by the decoded bitstream.
///
/// # Errors
/// Propagates decoding and simulation failures.
#[allow(clippy::too_many_arguments)]
pub fn simulate_from_bitstream(
    netlist: &Netlist,
    rules: &RuleSet,
    dp: &MergedDatapath,
    placement: &Placement,
    bitstream: &Bitstream,
    word_streams: &[Vec<u16>],
    bit_streams: &[Vec<bool>],
    pe_latency: u32,
) -> Result<apex_map::SimStreams, FabricSimError> {
    let decoded = decode_pe_configs(netlist, rules, dp, placement, bitstream)?;
    Ok(netlist.simulate_with(dp, rules, word_streams, bit_streams, pe_latency, &decoded)?)
}

/// [`simulate_from_bitstream`] on the retained decode-per-access
/// interpreter ([`Netlist::simulate_with_reference`]) instead of the
/// table-compiled engine — the executable specification the property
/// suite replays randomized bitstream simulations against.
///
/// # Errors
/// Propagates decoding and simulation failures.
#[allow(clippy::too_many_arguments)]
pub fn simulate_from_bitstream_reference(
    netlist: &Netlist,
    rules: &RuleSet,
    dp: &MergedDatapath,
    placement: &Placement,
    bitstream: &Bitstream,
    word_streams: &[Vec<u16>],
    bit_streams: &[Vec<bool>],
    pe_latency: u32,
) -> Result<apex_map::SimStreams, FabricSimError> {
    let decoded = decode_pe_configs(netlist, rules, dp, placement, bitstream)?;
    Ok(netlist.simulate_with_reference(
        dp,
        rules,
        word_streams,
        bit_streams,
        pe_latency,
        &decoded,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::generate_bitstream;
    use crate::fabric::{Fabric, FabricConfig};
    use crate::place::{place, PlaceOptions};
    use crate::route::{route, RouteOptions};
    use apex_map::map_application;
    use apex_pe::baseline_pe;
    use apex_rewrite::standard_ruleset;

    #[test]
    fn bitstream_driven_simulation_matches_golden_model() {
        let app = apex_apps::gaussian();
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app.graph]).unwrap();
        let design = map_application(&app.graph, &pe.datapath, &rules).unwrap();
        let fabric = Fabric::new(FabricConfig::default());
        let placement = place(&design.netlist, &fabric, &PlaceOptions::default()).unwrap();
        let routing =
            route(&design.netlist, &rules, &fabric, &placement, &RouteOptions::default()).unwrap();
        let bitstream = generate_bitstream(
            &design.netlist,
            &rules,
            &pe.datapath,
            &fabric,
            &placement,
            &routing,
        );

        let n_in = design
            .netlist
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, apex_map::NetKind::WordInput))
            .count();
        let streams: Vec<Vec<u16>> = (0..n_in)
            .map(|i| (0..4).map(|t| (i as u16 * 31 + t * 7) & 0xFF).collect())
            .collect();

        let golden = design.netlist.simulate(&pe.datapath, &rules, &streams, &[], 0).unwrap();
        let decoded = simulate_from_bitstream(
            &design.netlist,
            &rules,
            &pe.datapath,
            &placement,
            &bitstream,
            &streams,
            &[],
            0,
        )
        .unwrap();
        assert_eq!(golden, decoded, "decoded bitstream must execute identically");
    }

    #[test]
    fn missing_tile_config_is_reported() {
        let app = apex_apps::gaussian();
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app.graph]).unwrap();
        let design = map_application(&app.graph, &pe.datapath, &rules).unwrap();
        let fabric = Fabric::new(FabricConfig::default());
        let placement = place(&design.netlist, &fabric, &PlaceOptions::default()).unwrap();
        let empty = Bitstream {
            tiles: BTreeMap::new(),
            total_bits: 0,
        };
        let err =
            decode_pe_configs(&design.netlist, &rules, &pe.datapath, &placement, &empty)
                .unwrap_err();
        assert!(matches!(err, FabricSimError::MissingTileConfig { .. }));
    }
}

#[cfg(test)]
mod corruption_tests {
    use super::*;
    use crate::bitstream::generate_bitstream;
    use crate::fabric::{Fabric, FabricConfig};
    use crate::place::{place, PlaceOptions};
    use crate::route::{route, RouteOptions};
    use apex_map::map_application;
    use apex_pe::baseline_pe;
    use apex_rewrite::standard_ruleset;

    /// The bitstream must be load-bearing: corrupting configuration bits
    /// changes the computed results (i.e. the decoded-simulation path is
    /// not accidentally reading the rule templates).
    #[test]
    fn corrupted_bitstreams_change_behaviour() {
        let app = apex_apps::gaussian();
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app.graph]).unwrap();
        let design = map_application(&app.graph, &pe.datapath, &rules).unwrap();
        let fabric = Fabric::new(FabricConfig::default());
        let placement = place(&design.netlist, &fabric, &PlaceOptions::default()).unwrap();
        let routing =
            route(&design.netlist, &rules, &fabric, &placement, &RouteOptions::default()).unwrap();
        let bitstream = generate_bitstream(
            &design.netlist,
            &rules,
            &pe.datapath,
            &fabric,
            &placement,
            &routing,
        );
        let n_in = design
            .netlist
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, apex_map::NetKind::WordInput))
            .count();
        let streams: Vec<Vec<u16>> = (0..n_in).map(|i| vec![(i as u16 * 13 + 5) & 0xFF]).collect();
        let golden = simulate_from_bitstream(
            &design.netlist,
            &rules,
            &pe.datapath,
            &placement,
            &bitstream,
            &streams,
            &[],
            0,
        )
        .unwrap();

        // flip each bit of the first PE tile's configuration; at least
        // half the flips must visibly change some output
        let (&tile, _) = bitstream
            .tiles
            .iter()
            .find(|(_, cs)| cs.iter().any(|c| matches!(c, TileConfig::Pe { .. })))
            .expect("a configured PE tile");
        let n_bits = {
            let TileConfig::Pe { bits } = bitstream.tiles[&tile]
                .iter()
                .find(|c| matches!(c, TileConfig::Pe { .. }))
                .unwrap()
            else {
                unreachable!()
            };
            bits.len() * 8
        };
        let mut changed = 0usize;
        for flip in 0..n_bits {
            let mut corrupted = bitstream.clone();
            for c in corrupted.tiles.get_mut(&tile).unwrap() {
                if let TileConfig::Pe { bits } = c {
                    bits[flip / 8] ^= 1 << (flip % 8);
                    break;
                }
            }
            // a flip may decode to an illegal configuration (mux select
            // beyond the candidate list) — clearly behaviour-changing
            let decoded = decode_pe_configs(
                &design.netlist,
                &rules,
                &pe.datapath,
                &placement,
                &corrupted,
            )
            .unwrap();
            if decoded
                .values()
                .any(|cfg| pe.datapath.validate_config(cfg).is_err())
            {
                changed += 1;
                continue;
            }
            let out = simulate_from_bitstream(
                &design.netlist,
                &rules,
                &pe.datapath,
                &placement,
                &corrupted,
                &streams,
                &[],
                0,
            )
            .unwrap();
            if out != golden {
                changed += 1;
            }
        }
        assert!(
            changed * 2 >= n_bits / 2,
            "configuration bits must be load-bearing: only {changed}/{n_bits} flips mattered"
        );
    }
}
