//! Routing: negotiated-congestion maze routing over the switch-box
//! track graph (a PathFinder-style rip-up-and-reroute loop), plus the
//! post-route verification that stands in for the paper's Verilog
//! simulation of the configured fabric.
//!
//! Two engines live here. The production engine runs on a [`RouteGraph`]
//! — a CSR adjacency over the fabric tiles with dense per-edge usage and
//! history arrays, stamp-array Dijkstra state, and a reusable
//! lazy-deletion heap — and supports **incremental rip-up**: after the
//! first negotiation round only the nets crossing over-capacity links are
//! re-routed. [`route_reference`] retains the original `BTreeMap`-backed
//! full-reroute implementation as an executable specification; the
//! property suite replays the CSR engine against it (identical paths,
//! iterations, and overflow registers when incremental mode is off).

use crate::fabric::{Fabric, TileId};
use crate::place::{place_class, trace_through_regs, Placement};
use apex_fault::{ApexError, Provenance, Stage, StageBudget};
use apex_ir::ValueType;
use apex_map::Netlist;
use apex_rewrite::RuleSet;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::OnceLock;

/// One routed point-to-point connection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutedEdge {
    /// Consuming netlist node.
    pub consumer: u32,
    /// Input slot of the consumer.
    pub slot: usize,
    /// Producing (placeable) netlist node after folding registers.
    pub producer: u32,
    /// Tile path from producer to consumer (inclusive; length 1 when they
    /// share a tile).
    pub path: Vec<TileId>,
    /// Pipeline registers this connection must absorb in switch boxes.
    pub regs: u32,
    /// Whether the connection is 16-bit (`false` = 1-bit track).
    pub word: bool,
}

impl RoutedEdge {
    /// Number of tile-to-tile hops.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// A complete routing.
///
/// [`Routing::signal_hops`] is memoized: the stats/energy pipeline asks
/// for it repeatedly and the answer never changes for a given routing.
/// The cache is identity-transparent — equality and serialization ignore
/// it (mirroring the mining `Pattern::canonical_code` cache).
#[derive(Clone, Serialize, Deserialize)]
pub struct Routing {
    /// All routed connections.
    pub routes: Vec<RoutedEdge>,
    /// Registers that could not be absorbed by switch boxes along their
    /// route (route shorter than the register count); these are modelled
    /// as stacked SB registers and should stay near zero.
    pub overflow_regs: usize,
    /// Rip-up/reroute iterations used.
    pub iterations: usize,
    /// How the negotiation loop ended (always [`Provenance::Completed`]
    /// unless the stage budget tripped after the final round finished).
    pub provenance: Provenance,
    /// Memoized [`Routing::signal_hops`] (a routing is only ever paired
    /// with the fabric it was routed on, so one cached value suffices).
    signal_hops_cache: OnceLock<usize>,
}

impl PartialEq for Routing {
    fn eq(&self, other: &Self) -> bool {
        self.routes == other.routes
            && self.overflow_regs == other.overflow_regs
            && self.iterations == other.iterations
            && self.provenance == other.provenance
    }
}

impl std::fmt::Debug for Routing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // the memo cache is display state, not identity: keep warm and
        // cold routings Debug-identical (the determinism suite
        // fingerprints artifacts via their Debug rendering)
        f.debug_struct("Routing")
            .field("routes", &self.routes)
            .field("overflow_regs", &self.overflow_regs)
            .field("iterations", &self.iterations)
            .field("provenance", &self.provenance)
            .finish()
    }
}

impl Routing {
    fn new(
        routes: Vec<RoutedEdge>,
        overflow_regs: usize,
        iterations: usize,
        provenance: Provenance,
    ) -> Self {
        Routing {
            routes,
            overflow_regs,
            iterations,
            provenance,
            signal_hops_cache: OnceLock::new(),
        }
    }

    /// Total hops across all connections.
    pub fn total_hops(&self) -> usize {
        self.routes.iter().map(RoutedEdge::hops).sum()
    }

    /// Hops counted per *distinct signal* per link: fanout branches of a
    /// net share the wire, so this (not [`Routing::total_hops`]) is the
    /// physically switching wire count used for energy accounting.
    ///
    /// Computed once and cached; callers must always pass the fabric the
    /// routing was produced on (every call site does — routings are not
    /// portable across fabrics).
    pub fn signal_hops(&self, fabric: &crate::fabric::Fabric) -> usize {
        *self.signal_hops_cache.get_or_init(|| {
            let mut seen: Vec<(usize, bool, u32)> = Vec::with_capacity(self.total_hops());
            for r in &self.routes {
                for w in r.path.windows(2) {
                    seen.push((fabric.link(w[0], w[1]), r.word, r.producer));
                }
            }
            seen.sort_unstable();
            seen.dedup();
            seen.len()
        })
    }

    /// Registers physically absorbed in switch boxes.
    pub fn sb_regs(&self) -> usize {
        self.routes.iter().map(|r| r.regs as usize).sum()
    }
}

/// Routing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// Congestion could not be resolved within the iteration budget.
    Congested {
        /// Links still over capacity.
        overused_links: usize,
    },
    /// A connection's endpoints were not placed.
    Unplaced {
        /// The offending consumer.
        node: u32,
    },
    /// The stage budget expired before a capacity-clean routing existed.
    Exhausted {
        /// How the budget tripped (timeout / step budget / cancellation).
        provenance: Provenance,
    },
    /// A deterministic fault-injection site fired (tests only).
    Injected(&'static str),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Congested { overused_links } => {
                write!(f, "unresolved congestion on {overused_links} links")
            }
            RouteError::Unplaced { node } => write!(f, "node {node} is not placed"),
            RouteError::Exhausted { provenance } => {
                write!(f, "routing budget exhausted ({provenance})")
            }
            RouteError::Injected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for RouteError {}

impl From<RouteError> for ApexError {
    fn from(e: RouteError) -> Self {
        ApexError::with_source(Stage::Route, e)
    }
}

/// Routing options.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOptions {
    /// Maximum rip-up/reroute rounds.
    pub max_iterations: usize,
    /// History-cost increment per overused link per round.
    pub history_increment: f64,
    /// After the first negotiation round, re-route only the nets crossing
    /// over-capacity links instead of every net (classic incremental
    /// PathFinder). Round one is identical either way, so any routing
    /// that converges in one round — the common case on the paper's
    /// fabric — is bit-identical to the full-reroute reference engine.
    pub incremental: bool,
    /// Wall-clock / step budget for the negotiation loop.
    pub budget: StageBudget,
}

impl Default for RouteOptions {
    fn default() -> Self {
        RouteOptions {
            max_iterations: 10,
            history_increment: 2.0,
            incremental: true,
            budget: StageBudget::unlimited(),
        }
    }
}

impl RouteOptions {
    /// A relaxed variant for congestion-retry degradation: more
    /// negotiation rounds and gentler history growth so PathFinder can
    /// spread nets instead of thrashing.
    pub fn relaxed(&self) -> RouteOptions {
        RouteOptions {
            max_iterations: self.max_iterations.saturating_mul(3).max(30),
            history_increment: self.history_increment * 0.5,
            incremental: self.incremental,
            budget: self.budget.clone(),
        }
    }
}

/// The connections that need routes: every input edge of a placed node,
/// with interconnect registers folded onto the wire.
pub fn connections(netlist: &Netlist, rules: &RuleSet) -> Vec<(u32, usize, u32, u32, bool)> {
    let mut out = Vec::new();
    for (i, node) in netlist.nodes.iter().enumerate() {
        if place_class(&node.kind).is_none() {
            continue;
        }
        let in_tys = netlist.input_types(i as u32, rules);
        for (slot, r) in node.inputs.iter().enumerate() {
            let (producer, regs) = trace_through_regs(netlist, r.node);
            let word = in_tys[slot] == ValueType::Word;
            out.push((i as u32, slot, producer, regs, word));
        }
    }
    out
}

/// CSR adjacency over the fabric's directed tile-to-tile links, built
/// once per fabric. Edge `e` of tile `u` (in [`Fabric::neighbours`]
/// order: up, down, left, right) gets the dense id `off[u] + e`; per-edge
/// routing state (usage, history, track assignment) indexes
/// `edge * 2 + word` instead of sparse `(from * len + to, word)` maps.
pub struct RouteGraph {
    /// CSR row offsets, one per tile plus a terminator.
    off: Vec<u32>,
    /// Target tile per CSR edge.
    to: Vec<u32>,
}

impl RouteGraph {
    /// Builds the CSR adjacency for a fabric.
    pub fn new(fabric: &Fabric) -> Self {
        let n = fabric.len();
        let mut off = Vec::with_capacity(n + 1);
        let mut to = Vec::with_capacity(n * 4);
        off.push(0u32);
        for t in 0..n as u32 {
            for v in fabric.neighbours(TileId(t)) {
                to.push(v.0);
            }
            off.push(to.len() as u32);
        }
        RouteGraph { off, to }
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.to.len()
    }

    /// The dense edge id of a directed adjacent link, or `None` when the
    /// tiles are not fabric neighbours.
    pub fn edge_of(&self, from: TileId, to: TileId) -> Option<usize> {
        let lo = *self.off.get(from.0 as usize)? as usize;
        let hi = *self.off.get(from.0 as usize + 1)? as usize;
        (lo..hi).find(|&e| self.to[e] == to.0)
    }
}

/// Reusable per-route state: dense usage/history arrays over
/// `(edge, word)` and stamp-array Dijkstra scratch (no per-net
/// allocation; clearing is O(touched), not O(edges)).
struct RouterState {
    /// Producers carrying a signal on `(edge, word)`; indexed
    /// `edge * 2 + word`. Small vectors — a link carries at most a few
    /// distinct signals.
    usage: Vec<Vec<u32>>,
    /// `(edge, word)` slots ever used this `route()` call (deduped).
    touched: Vec<u32>,
    touched_mark: Vec<bool>,
    /// Negotiated-congestion history per `(edge, word)`.
    history: Vec<f64>,
    /// Dijkstra scratch, valid only where `stamp == cur`.
    dist: Vec<f64>,
    prev: Vec<u32>,
    stamp: Vec<u32>,
    cur: u32,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Scratch mark for the over-capacity edge set (incremental rip-up).
    over_mark: Vec<bool>,
}

const NO_PREV: u32 = u32::MAX;

impl RouterState {
    fn new(graph: &RouteGraph, n_tiles: usize) -> Self {
        let slots = graph.n_edges() * 2;
        RouterState {
            usage: vec![Vec::new(); slots],
            touched: Vec::new(),
            touched_mark: vec![false; slots],
            history: vec![0.0; slots],
            dist: vec![f64::INFINITY; n_tiles],
            prev: vec![NO_PREV; n_tiles],
            stamp: vec![0; n_tiles],
            cur: 0,
            heap: BinaryHeap::new(),
            over_mark: vec![false; slots],
        }
    }

    fn add_usage(&mut self, idx: usize, producer: u32) {
        let v = &mut self.usage[idx];
        if !v.contains(&producer) {
            v.push(producer);
            if !self.touched_mark[idx] {
                self.touched_mark[idx] = true;
                self.touched.push(idx as u32);
            }
        }
    }

    fn remove_usage(&mut self, idx: usize, producer: u32) {
        let v = &mut self.usage[idx];
        if let Some(p) = v.iter().position(|&x| x == producer) {
            // membership and count are all that matter; order is not
            v.swap_remove(p);
        }
    }

    fn clear_usage(&mut self) {
        for &idx in &self.touched {
            self.usage[idx as usize].clear();
            self.touched_mark[idx as usize] = false;
        }
        self.touched.clear();
    }

    /// Touched `(edge, word)` slots currently over their track capacity.
    fn overused(&self, wcap: usize, bcap: usize) -> Vec<u32> {
        self.touched
            .iter()
            .copied()
            .filter(|&idx| {
                let cap = if idx & 1 == 1 { wcap } else { bcap };
                self.usage[idx as usize].len() > cap
            })
            .collect()
    }

    /// Dijkstra over the CSR graph with congestion-aware link costs —
    /// arithmetic-identical to the reference [`shortest_path_reference`]
    /// (same quantized heap keys, same epsilons, same neighbour order),
    /// so the two engines produce the same paths bit for bit.
    fn shortest(
        &mut self,
        graph: &RouteGraph,
        src: TileId,
        dst: TileId,
        word: bool,
        producer: u32,
        capacity: usize,
    ) -> Vec<TileId> {
        if src == dst {
            return vec![src];
        }
        self.cur += 1;
        let stamp = self.cur;
        self.heap.clear();
        self.dist[src.0 as usize] = 0.0;
        self.prev[src.0 as usize] = NO_PREV;
        self.stamp[src.0 as usize] = stamp;
        self.heap.push(Reverse((0, src.0)));
        while let Some(Reverse((d_milli, u))) = self.heap.pop() {
            let d = d_milli as f64 / 1000.0;
            let du = if self.stamp[u as usize] == stamp {
                self.dist[u as usize]
            } else {
                f64::INFINITY
            };
            if d > du + 1e-9 {
                continue;
            }
            if u == dst.0 {
                break;
            }
            let lo = self.off_at(graph, u);
            let hi = self.off_at(graph, u + 1);
            for e in lo..hi {
                let v = graph.to[e];
                let idx = e * 2 + usize::from(word);
                let prods = &self.usage[idx];
                let carries_me = prods.contains(&producer);
                let used = prods.len();
                let cost = if carries_me {
                    0.05 // the wire already exists; branch at the switch box
                } else {
                    let congestion = if used >= capacity {
                        5.0 * (used - capacity + 1) as f64
                    } else {
                        0.2 * used as f64 / capacity as f64
                    };
                    1.0 + congestion + self.history[idx]
                };
                let nd = d + cost;
                let dv = if self.stamp[v as usize] == stamp {
                    self.dist[v as usize]
                } else {
                    f64::INFINITY
                };
                if nd + 1e-9 < dv {
                    self.dist[v as usize] = nd;
                    self.prev[v as usize] = u;
                    self.stamp[v as usize] = stamp;
                    self.heap.push(Reverse(((nd * 1000.0) as u64, v)));
                }
            }
        }
        // reconstruct
        let mut path = vec![dst];
        let mut cur = dst.0;
        while cur != src.0 {
            // invariant: the fabric grid is fully connected, so Dijkstra
            // always reaches dst and every hop has a predecessor; a broken
            // chain yields a non-contiguous path that `verify_routed`
            // rejects
            if self.stamp[cur as usize] != stamp {
                break;
            }
            let p = self.prev[cur as usize];
            if p == NO_PREV {
                break;
            }
            cur = p;
            path.push(TileId(cur));
        }
        path.reverse();
        path
    }

    fn off_at(&self, graph: &RouteGraph, u: u32) -> usize {
        graph.off[u as usize] as usize
    }
}

/// Routes a placed netlist on the CSR engine.
///
/// With `options.incremental` the negotiation loop rips up and re-routes
/// only the nets crossing over-capacity links after round one; otherwise
/// every round re-routes every net, replaying [`route_reference`]
/// bit-identically.
///
/// # Errors
/// Fails when congestion cannot be resolved or endpoints are unplaced.
pub fn route(
    netlist: &Netlist,
    rules: &RuleSet,
    fabric: &Fabric,
    placement: &Placement,
    options: &RouteOptions,
) -> Result<Routing, RouteError> {
    apex_fault::fail_point!("route::start", RouteError::Injected("route::start"));
    let conns = connections(netlist, rules);
    let graph = RouteGraph::new(fabric);
    let mut st = RouterState::new(&graph, fabric.len());
    let mut routes: Vec<RoutedEdge> = Vec::with_capacity(conns.len());
    let mut meter = options.budget.start();
    let wcap = fabric.config.word_tracks;
    let bcap = fabric.config.bit_tracks;

    // reroutes one connection and accumulates its usage
    let route_one = |st: &mut RouterState,
                     meter: &mut apex_fault::BudgetMeter,
                     (consumer, slot, producer, regs, word): (u32, usize, u32, u32, bool)|
     -> Result<RoutedEdge, RouteError> {
        if !meter.tick() {
            return Err(RouteError::Exhausted {
                provenance: meter.provenance(),
            });
        }
        let src = placement.tile_of_node[producer as usize]
            .ok_or(RouteError::Unplaced { node: producer })?;
        let dst = placement.tile_of_node[consumer as usize]
            .ok_or(RouteError::Unplaced { node: consumer })?;
        let capacity = if word { wcap } else { bcap };
        let path = st.shortest(&graph, src, dst, word, producer, capacity);
        for w in path.windows(2) {
            // invariant: consecutive path tiles are fabric neighbours (the
            // Dijkstra walked real CSR edges), so the edge id exists
            if let Some(e) = graph.edge_of(w[0], w[1]) {
                st.add_usage(e * 2 + usize::from(word), producer);
            }
        }
        Ok(RoutedEdge {
            consumer,
            slot,
            producer,
            regs,
            word,
            path,
        })
    };

    let mut overused: Vec<u32> = Vec::new();
    for round in 0..options.max_iterations {
        if !meter.check_slow() {
            return Err(RouteError::Exhausted {
                provenance: meter.provenance(),
            });
        }
        let iterations = round + 1;
        if round == 0 || !options.incremental {
            // full negotiation round: every net re-routed from scratch
            st.clear_usage();
            routes.clear();
            for &conn in &conns {
                routes.push(route_one(&mut st, &mut meter, conn)?);
            }
        } else {
            // incremental rip-up: only nets crossing an over-capacity
            // link are torn out and re-routed; everyone else keeps both
            // their path and their claim on the track graph
            for &idx in &overused {
                st.over_mark[idx as usize] = true;
            }
            let mut ripped: std::collections::BTreeSet<(u32, bool)> =
                std::collections::BTreeSet::new();
            for r in &routes {
                for w in r.path.windows(2) {
                    let Some(e) = graph.edge_of(w[0], w[1]) else {
                        continue;
                    };
                    if st.over_mark[e * 2 + usize::from(r.word)] {
                        ripped.insert((r.producer, r.word));
                        break;
                    }
                }
            }
            for &idx in &overused {
                st.over_mark[idx as usize] = false;
            }
            // a net is a (producer, signal-kind) pair: all fanout branches
            // share wires, so rip-up removes the whole net before any
            // branch re-routes (partial removal would corrupt the shared
            // usage counts)
            for r in &routes {
                if !ripped.contains(&(r.producer, r.word)) {
                    continue;
                }
                for w in r.path.windows(2) {
                    if let Some(e) = graph.edge_of(w[0], w[1]) {
                        st.remove_usage(e * 2 + usize::from(r.word), r.producer);
                    }
                }
            }
            for (i, &conn) in conns.iter().enumerate() {
                let (_, _, producer, _, word) = conn;
                if !ripped.contains(&(producer, word)) {
                    continue;
                }
                routes[i] = route_one(&mut st, &mut meter, conn)?;
            }
        }
        // congestion check: distinct signals per link vs track count
        overused = st.overused(wcap, bcap);
        if overused.is_empty() {
            let overflow_regs = routes
                .iter()
                .map(|r| (r.regs as usize).saturating_sub(r.hops()))
                .sum();
            return Ok(Routing::new(routes, overflow_regs, iterations, meter.provenance()));
        }
        for &idx in &overused {
            st.history[idx as usize] += options.history_increment;
        }
    }
    Err(RouteError::Congested {
        overused_links: overused.len(),
    })
}

/// The original full-reroute PathFinder loop over sparse `BTreeMap`
/// congestion state — retained verbatim as the executable specification
/// the property suite replays the CSR engine against.
///
/// # Errors
/// Fails when congestion cannot be resolved or endpoints are unplaced.
pub fn route_reference(
    netlist: &Netlist,
    rules: &RuleSet,
    fabric: &Fabric,
    placement: &Placement,
    options: &RouteOptions,
) -> Result<Routing, RouteError> {
    apex_fault::fail_point!("route::start", RouteError::Injected("route::start"));
    let conns = connections(netlist, rules);
    // usage and history per (link, word?) — sparse maps keyed by link id
    let mut history: BTreeMap<(usize, bool), f64> = BTreeMap::new();
    let mut routes: Vec<RoutedEdge> = Vec::new();
    let mut meter = options.budget.start();

    for round in 0..options.max_iterations {
        if !meter.check_slow() {
            return Err(RouteError::Exhausted {
                provenance: meter.provenance(),
            });
        }
        let iterations = round + 1;
        // a link carries one track per *distinct signal*: fanout branches
        // of the same producer share the wire for free
        let mut usage: BTreeMap<(usize, bool), std::collections::BTreeSet<u32>> = BTreeMap::new();
        routes.clear();
        for &(consumer, slot, producer, regs, word) in &conns {
            if !meter.tick() {
                return Err(RouteError::Exhausted {
                    provenance: meter.provenance(),
                });
            }
            let src = placement.tile_of_node[producer as usize]
                .ok_or(RouteError::Unplaced { node: producer })?;
            let dst = placement.tile_of_node[consumer as usize]
                .ok_or(RouteError::Unplaced { node: consumer })?;
            let capacity = if word {
                fabric.config.word_tracks
            } else {
                fabric.config.bit_tracks
            };
            let path =
                shortest_path_reference(fabric, src, dst, word, producer, capacity, &usage, &history);
            for w in path.windows(2) {
                let l = fabric.link(w[0], w[1]);
                usage.entry((l, word)).or_default().insert(producer);
            }
            routes.push(RoutedEdge {
                consumer,
                slot,
                producer,
                path,
                regs,
                word,
            });
        }
        // congestion check: distinct signals per link vs track count
        let overused: Vec<(usize, bool)> = usage
            .iter()
            .filter(|(&(_, word), signals)| {
                signals.len()
                    > if word {
                        fabric.config.word_tracks
                    } else {
                        fabric.config.bit_tracks
                    }
            })
            .map(|(&k, _)| k)
            .collect();
        if overused.is_empty() {
            let overflow_regs = routes
                .iter()
                .map(|r| (r.regs as usize).saturating_sub(r.hops()))
                .sum();
            return Ok(Routing::new(routes, overflow_regs, iterations, meter.provenance()));
        }
        for k in overused {
            *history.entry(k).or_insert(0.0) += options.history_increment;
        }
    }
    // final count of overused links
    let mut usage: BTreeMap<(usize, bool), std::collections::BTreeSet<u32>> = BTreeMap::new();
    for r in &routes {
        for w in r.path.windows(2) {
            usage
                .entry((fabric.link(w[0], w[1]), r.word))
                .or_default()
                .insert(r.producer);
        }
    }
    let overused_links = usage
        .iter()
        .filter(|(&(_, word), signals)| {
            signals.len()
                > if word {
                    fabric.config.word_tracks
                } else {
                    fabric.config.bit_tracks
                }
        })
        .count();
    Err(RouteError::Congested { overused_links })
}

/// Dijkstra over tiles with congestion-aware link costs. Links already
/// carrying this producer's signal are nearly free (wire reuse). The
/// specification twin of [`RouterState::shortest`].
#[allow(clippy::too_many_arguments)]
fn shortest_path_reference(
    fabric: &Fabric,
    src: TileId,
    dst: TileId,
    word: bool,
    producer: u32,
    capacity: usize,
    usage: &BTreeMap<(usize, bool), std::collections::BTreeSet<u32>>,
    history: &BTreeMap<(usize, bool), f64>,
) -> Vec<TileId> {
    if src == dst {
        return vec![src];
    }
    let n = fabric.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<TileId>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    dist[src.0 as usize] = 0.0;
    heap.push(Reverse((0, src.0)));
    while let Some(Reverse((d_milli, u))) = heap.pop() {
        let u_t = TileId(u);
        let d = d_milli as f64 / 1000.0;
        if d > dist[u as usize] + 1e-9 {
            continue;
        }
        if u_t == dst {
            break;
        }
        for v in fabric.neighbours(u_t) {
            let l = fabric.link(u_t, v);
            let signals = usage.get(&(l, word));
            let carries_me = signals.is_some_and(|s| s.contains(&producer));
            let used = signals.map_or(0, std::collections::BTreeSet::len);
            let cost = if carries_me {
                0.05 // the wire already exists; branch at the switch box
            } else {
                let congestion = if used >= capacity {
                    5.0 * (used - capacity + 1) as f64
                } else {
                    0.2 * used as f64 / capacity as f64
                };
                let hist = history.get(&(l, word)).copied().unwrap_or(0.0);
                1.0 + congestion + hist
            };
            let nd = d + cost;
            if nd + 1e-9 < dist[v.0 as usize] {
                dist[v.0 as usize] = nd;
                prev[v.0 as usize] = Some(u_t);
                heap.push(Reverse(((nd * 1000.0) as u64, v.0)));
            }
        }
    }
    // reconstruct
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        // invariant: the fabric grid is fully connected, so Dijkstra always
        // reaches dst and every hop has a predecessor; a broken chain
        // yields a non-contiguous path that `verify_routed` rejects
        let Some(p) = prev[cur.0 as usize] else {
            break;
        };
        cur = p;
        path.push(cur);
    }
    path.reverse();
    path
}

/// Post-route verification — our substitute for simulating the configured
/// CGRA Verilog with VCS (paper Section 4, step 3c): checks that every
/// netlist connection has a contiguous route between the placed endpoint
/// tiles and that no link exceeds its track capacity.
///
/// # Errors
/// Returns a description of the first inconsistency.
pub fn verify_routed(
    netlist: &Netlist,
    rules: &RuleSet,
    fabric: &Fabric,
    placement: &Placement,
    routing: &Routing,
) -> Result<(), String> {
    let conns = connections(netlist, rules);
    if conns.len() != routing.routes.len() {
        return Err(format!(
            "expected {} routes, found {}",
            conns.len(),
            routing.routes.len()
        ));
    }
    let mut usage: BTreeMap<(usize, bool), std::collections::BTreeSet<u32>> = BTreeMap::new();
    for r in &routing.routes {
        let src = placement.tile_of_node[r.producer as usize]
            .ok_or_else(|| format!("producer {} unplaced", r.producer))?;
        let dst = placement.tile_of_node[r.consumer as usize]
            .ok_or_else(|| format!("consumer {} unplaced", r.consumer))?;
        if r.path.first() != Some(&src) || r.path.last() != Some(&dst) {
            return Err(format!(
                "route {}→{} does not connect its endpoints",
                r.producer, r.consumer
            ));
        }
        for w in r.path.windows(2) {
            if fabric.distance(w[0], w[1]) != 1 {
                return Err("route hops between non-adjacent tiles".into());
            }
            usage
                .entry((fabric.link(w[0], w[1]), r.word))
                .or_default()
                .insert(r.producer);
        }
    }
    for (&(_, word), signals) in &usage {
        let cap = if word {
            fabric.config.word_tracks
        } else {
            fabric.config.bit_tracks
        };
        if signals.len() > cap {
            return Err(format!("link over capacity: {} > {cap}", signals.len()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;
    use crate::place::{place, PlaceOptions};
    use apex_map::map_application;
    use apex_pe::baseline_pe;
    use apex_rewrite::standard_ruleset;

    fn routed_gaussian() -> (Netlist, RuleSet, Fabric, Placement, Routing) {
        let app = apex_apps::gaussian();
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app.graph]).unwrap();
        let d = map_application(&app.graph, &pe.datapath, &rules).unwrap();
        let fabric = Fabric::new(FabricConfig::default());
        let placement = place(&d.netlist, &fabric, &PlaceOptions::default()).unwrap();
        let routing = route(&d.netlist, &rules, &fabric, &placement, &RouteOptions::default())
            .unwrap();
        (d.netlist, rules, fabric, placement, routing)
    }

    #[test]
    fn gaussian_routes_within_capacity() {
        let (netlist, rules, fabric, placement, routing) = routed_gaussian();
        verify_routed(&netlist, &rules, &fabric, &placement, &routing).unwrap();
        assert!(routing.total_hops() > 0);
        assert_eq!(routing.overflow_regs, 0);
    }

    #[test]
    fn route_count_matches_connection_count() {
        let (netlist, rules, _, _, routing) = routed_gaussian();
        assert_eq!(routing.routes.len(), connections(&netlist, &rules).len());
    }

    #[test]
    fn csr_engine_matches_reference_on_gaussian() {
        let (netlist, rules, fabric, placement, routing) = routed_gaussian();
        let reference = route_reference(
            &netlist,
            &rules,
            &fabric,
            &placement,
            &RouteOptions::default(),
        )
        .unwrap();
        assert_eq!(routing, reference);
    }

    #[test]
    fn signal_hops_is_cached_and_stable() {
        let (_, _, fabric, _, routing) = routed_gaussian();
        let first = routing.signal_hops(&fabric);
        assert!(first > 0);
        assert_eq!(routing.signal_hops(&fabric), first);
        // the cache is identity-transparent: a fresh clone of the same
        // routing computes the same number from scratch
        let cold = Routing::new(
            routing.routes.clone(),
            routing.overflow_regs,
            routing.iterations,
            routing.provenance,
        );
        assert_eq!(cold.signal_hops(&fabric), first);
        assert_eq!(cold, routing);
    }

    #[test]
    fn paths_are_shortest_when_uncongested() {
        let (_, _, fabric, _, routing) = routed_gaussian();
        // at least half the routes should be at Manhattan distance (light
        // congestion on a 32x16 array)
        let tight = routing
            .routes
            .iter()
            .filter(|r| r.hops() == fabric.distance(r.path[0], *r.path.last().unwrap()))
            .count();
        assert!(tight * 2 >= routing.routes.len());
    }

    #[test]
    fn congestion_fails_gracefully_on_tiny_fabrics() {
        // a 2-wide fabric with 1 track cannot carry gaussian
        let app = apex_apps::gaussian();
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app.graph]).unwrap();
        let d = map_application(&app.graph, &pe.datapath, &rules).unwrap();
        let fabric = Fabric::new(FabricConfig {
            width: 30,
            height: 10,
            word_tracks: 1,
            bit_tracks: 1,
            ..FabricConfig::default()
        });
        match place(&d.netlist, &fabric, &PlaceOptions::default()) {
            Err(_) => {} // capacity error is acceptable
            Ok(placement) => {
                let r = route(
                    &d.netlist,
                    &rules,
                    &fabric,
                    &placement,
                    &RouteOptions {
                        max_iterations: 2,
                        ..RouteOptions::default()
                    },
                );
                // either it squeezes through or reports congestion cleanly
                if let Err(e) = r {
                    assert!(matches!(e, RouteError::Congested { .. }));
                }
            }
        }
    }

    #[test]
    fn zero_deadline_reports_exhausted_budget() {
        let (netlist, rules, fabric, placement, _) = routed_gaussian();
        let err = route(
            &netlist,
            &rules,
            &fabric,
            &placement,
            &RouteOptions {
                budget: StageBudget::unlimited()
                    .with_deadline(std::time::Duration::ZERO),
                ..RouteOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            RouteError::Exhausted {
                provenance: Provenance::TimedOut
            }
        );
    }

    #[test]
    fn same_tile_connection_has_empty_route() {
        let f = Fabric::new(FabricConfig::default());
        let p = shortest_path_reference(
            &f,
            f.at(1, 1),
            f.at(1, 1),
            true,
            0,
            5,
            &BTreeMap::new(),
            &BTreeMap::new(),
        );
        assert_eq!(p.len(), 1);
        let graph = RouteGraph::new(&f);
        let mut st = RouterState::new(&graph, f.len());
        let p = st.shortest(&graph, f.at(1, 1), f.at(1, 1), true, 0, 5);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn route_graph_edges_cover_every_neighbour_pair() {
        let f = Fabric::new(FabricConfig::default());
        let g = RouteGraph::new(&f);
        let mut edges = 0usize;
        for t in 0..f.len() as u32 {
            for v in f.neighbours(TileId(t)) {
                assert!(g.edge_of(TileId(t), v).is_some());
                edges += 1;
            }
        }
        assert_eq!(edges, g.n_edges());
        // non-adjacent pairs have no edge
        assert_eq!(g.edge_of(f.at(0, 0), f.at(2, 0)), None);
        assert_eq!(g.edge_of(f.at(0, 0), f.at(0, 0)), None);
    }
}
