//! Routing: negotiated-congestion maze routing over the switch-box
//! track graph (a PathFinder-style rip-up-and-reroute loop), plus the
//! post-route verification that stands in for the paper's Verilog
//! simulation of the configured fabric.

use crate::fabric::{Fabric, TileId};
use crate::place::{place_class, trace_through_regs, Placement};
use apex_fault::{ApexError, Provenance, Stage, StageBudget};
use apex_ir::ValueType;
use apex_map::Netlist;
use apex_rewrite::RuleSet;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// One routed point-to-point connection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutedEdge {
    /// Consuming netlist node.
    pub consumer: u32,
    /// Input slot of the consumer.
    pub slot: usize,
    /// Producing (placeable) netlist node after folding registers.
    pub producer: u32,
    /// Tile path from producer to consumer (inclusive; length 1 when they
    /// share a tile).
    pub path: Vec<TileId>,
    /// Pipeline registers this connection must absorb in switch boxes.
    pub regs: u32,
    /// Whether the connection is 16-bit (`false` = 1-bit track).
    pub word: bool,
}

impl RoutedEdge {
    /// Number of tile-to-tile hops.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// A complete routing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Routing {
    /// All routed connections.
    pub routes: Vec<RoutedEdge>,
    /// Registers that could not be absorbed by switch boxes along their
    /// route (route shorter than the register count); these are modelled
    /// as stacked SB registers and should stay near zero.
    pub overflow_regs: usize,
    /// Rip-up/reroute iterations used.
    pub iterations: usize,
    /// How the negotiation loop ended (always [`Provenance::Completed`]
    /// unless the stage budget tripped after the final round finished).
    pub provenance: Provenance,
}

impl Routing {
    /// Total hops across all connections.
    pub fn total_hops(&self) -> usize {
        self.routes.iter().map(RoutedEdge::hops).sum()
    }

    /// Hops counted per *distinct signal* per link: fanout branches of a
    /// net share the wire, so this (not [`Routing::total_hops`]) is the
    /// physically switching wire count used for energy accounting.
    pub fn signal_hops(&self, fabric: &crate::fabric::Fabric) -> usize {
        let mut seen: std::collections::BTreeSet<(usize, bool, u32)> =
            std::collections::BTreeSet::new();
        for r in &self.routes {
            for w in r.path.windows(2) {
                seen.insert((fabric.link(w[0], w[1]), r.word, r.producer));
            }
        }
        seen.len()
    }

    /// Registers physically absorbed in switch boxes.
    pub fn sb_regs(&self) -> usize {
        self.routes.iter().map(|r| r.regs as usize).sum()
    }
}

/// Routing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// Congestion could not be resolved within the iteration budget.
    Congested {
        /// Links still over capacity.
        overused_links: usize,
    },
    /// A connection's endpoints were not placed.
    Unplaced {
        /// The offending consumer.
        node: u32,
    },
    /// The stage budget expired before a capacity-clean routing existed.
    Exhausted {
        /// How the budget tripped (timeout / step budget / cancellation).
        provenance: Provenance,
    },
    /// A deterministic fault-injection site fired (tests only).
    Injected(&'static str),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Congested { overused_links } => {
                write!(f, "unresolved congestion on {overused_links} links")
            }
            RouteError::Unplaced { node } => write!(f, "node {node} is not placed"),
            RouteError::Exhausted { provenance } => {
                write!(f, "routing budget exhausted ({provenance})")
            }
            RouteError::Injected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for RouteError {}

impl From<RouteError> for ApexError {
    fn from(e: RouteError) -> Self {
        ApexError::with_source(Stage::Route, e)
    }
}

/// Routing options.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOptions {
    /// Maximum rip-up/reroute rounds.
    pub max_iterations: usize,
    /// History-cost increment per overused link per round.
    pub history_increment: f64,
    /// Wall-clock / step budget for the negotiation loop.
    pub budget: StageBudget,
}

impl Default for RouteOptions {
    fn default() -> Self {
        RouteOptions {
            max_iterations: 10,
            history_increment: 2.0,
            budget: StageBudget::unlimited(),
        }
    }
}

impl RouteOptions {
    /// A relaxed variant for congestion-retry degradation: more
    /// negotiation rounds and gentler history growth so PathFinder can
    /// spread nets instead of thrashing.
    pub fn relaxed(&self) -> RouteOptions {
        RouteOptions {
            max_iterations: self.max_iterations.saturating_mul(3).max(30),
            history_increment: self.history_increment * 0.5,
            budget: self.budget.clone(),
        }
    }
}

/// The connections that need routes: every input edge of a placed node,
/// with interconnect registers folded onto the wire.
pub fn connections(netlist: &Netlist, rules: &RuleSet) -> Vec<(u32, usize, u32, u32, bool)> {
    let mut out = Vec::new();
    for (i, node) in netlist.nodes.iter().enumerate() {
        if place_class(&node.kind).is_none() {
            continue;
        }
        let in_tys = netlist.input_types(i as u32, rules);
        for (slot, r) in node.inputs.iter().enumerate() {
            let (producer, regs) = trace_through_regs(netlist, r.node);
            let word = in_tys[slot] == ValueType::Word;
            out.push((i as u32, slot, producer, regs, word));
        }
    }
    out
}

/// Routes a placed netlist.
///
/// # Errors
/// Fails when congestion cannot be resolved or endpoints are unplaced.
pub fn route(
    netlist: &Netlist,
    rules: &RuleSet,
    fabric: &Fabric,
    placement: &Placement,
    options: &RouteOptions,
) -> Result<Routing, RouteError> {
    apex_fault::fail_point!("route::start", RouteError::Injected("route::start"));
    let conns = connections(netlist, rules);
    // usage and history per (link, word?) — sparse maps keyed by link id
    let mut history: BTreeMap<(usize, bool), f64> = BTreeMap::new();
    let mut routes: Vec<RoutedEdge> = Vec::new();
    let mut meter = options.budget.start();

    for round in 0..options.max_iterations {
        if !meter.check_slow() {
            return Err(RouteError::Exhausted {
                provenance: meter.provenance(),
            });
        }
        let iterations = round + 1;
        // a link carries one track per *distinct signal*: fanout branches
        // of the same producer share the wire for free
        let mut usage: BTreeMap<(usize, bool), std::collections::BTreeSet<u32>> = BTreeMap::new();
        routes.clear();
        for &(consumer, slot, producer, regs, word) in &conns {
            if !meter.tick() {
                return Err(RouteError::Exhausted {
                    provenance: meter.provenance(),
                });
            }
            let src = placement.tile_of_node[producer as usize]
                .ok_or(RouteError::Unplaced { node: producer })?;
            let dst = placement.tile_of_node[consumer as usize]
                .ok_or(RouteError::Unplaced { node: consumer })?;
            let capacity = if word {
                fabric.config.word_tracks
            } else {
                fabric.config.bit_tracks
            };
            let path =
                shortest_path(fabric, src, dst, word, producer, capacity, &usage, &history);
            for w in path.windows(2) {
                let l = fabric.link(w[0], w[1]);
                usage.entry((l, word)).or_default().insert(producer);
            }
            routes.push(RoutedEdge {
                consumer,
                slot,
                producer,
                path,
                regs,
                word,
            });
        }
        // congestion check: distinct signals per link vs track count
        let overused: Vec<(usize, bool)> = usage
            .iter()
            .filter(|(&(_, word), signals)| {
                signals.len()
                    > if word {
                        fabric.config.word_tracks
                    } else {
                        fabric.config.bit_tracks
                    }
            })
            .map(|(&k, _)| k)
            .collect();
        if overused.is_empty() {
            let overflow_regs = routes
                .iter()
                .map(|r| (r.regs as usize).saturating_sub(r.hops()))
                .sum();
            return Ok(Routing {
                routes,
                overflow_regs,
                iterations,
                provenance: meter.provenance(),
            });
        }
        for k in overused {
            *history.entry(k).or_insert(0.0) += options.history_increment;
        }
    }
    // final count of overused links
    let mut usage: BTreeMap<(usize, bool), std::collections::BTreeSet<u32>> = BTreeMap::new();
    for r in &routes {
        for w in r.path.windows(2) {
            usage
                .entry((fabric.link(w[0], w[1]), r.word))
                .or_default()
                .insert(r.producer);
        }
    }
    let overused_links = usage
        .iter()
        .filter(|(&(_, word), signals)| {
            signals.len()
                > if word {
                    fabric.config.word_tracks
                } else {
                    fabric.config.bit_tracks
                }
        })
        .count();
    Err(RouteError::Congested { overused_links })
}

/// Dijkstra over tiles with congestion-aware link costs. Links already
/// carrying this producer's signal are nearly free (wire reuse).
#[allow(clippy::too_many_arguments)]
fn shortest_path(
    fabric: &Fabric,
    src: TileId,
    dst: TileId,
    word: bool,
    producer: u32,
    capacity: usize,
    usage: &BTreeMap<(usize, bool), std::collections::BTreeSet<u32>>,
    history: &BTreeMap<(usize, bool), f64>,
) -> Vec<TileId> {
    if src == dst {
        return vec![src];
    }
    let n = fabric.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<TileId>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    dist[src.0 as usize] = 0.0;
    heap.push(Reverse((0, src.0)));
    while let Some(Reverse((d_milli, u))) = heap.pop() {
        let u_t = TileId(u);
        let d = d_milli as f64 / 1000.0;
        if d > dist[u as usize] + 1e-9 {
            continue;
        }
        if u_t == dst {
            break;
        }
        for v in fabric.neighbours(u_t) {
            let l = fabric.link(u_t, v);
            let signals = usage.get(&(l, word));
            let carries_me = signals.is_some_and(|s| s.contains(&producer));
            let used = signals.map_or(0, std::collections::BTreeSet::len);
            let cost = if carries_me {
                0.05 // the wire already exists; branch at the switch box
            } else {
                let congestion = if used >= capacity {
                    5.0 * (used - capacity + 1) as f64
                } else {
                    0.2 * used as f64 / capacity as f64
                };
                let hist = history.get(&(l, word)).copied().unwrap_or(0.0);
                1.0 + congestion + hist
            };
            let nd = d + cost;
            if nd + 1e-9 < dist[v.0 as usize] {
                dist[v.0 as usize] = nd;
                prev[v.0 as usize] = Some(u_t);
                heap.push(Reverse(((nd * 1000.0) as u64, v.0)));
            }
        }
    }
    // reconstruct
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        // invariant: the fabric grid is fully connected, so Dijkstra always
        // reaches dst and every hop has a predecessor; a broken chain
        // yields a non-contiguous path that `verify_routed` rejects
        let Some(p) = prev[cur.0 as usize] else {
            break;
        };
        cur = p;
        path.push(cur);
    }
    path.reverse();
    path
}

/// Post-route verification — our substitute for simulating the configured
/// CGRA Verilog with VCS (paper Section 4, step 3c): checks that every
/// netlist connection has a contiguous route between the placed endpoint
/// tiles and that no link exceeds its track capacity.
///
/// # Errors
/// Returns a description of the first inconsistency.
pub fn verify_routed(
    netlist: &Netlist,
    rules: &RuleSet,
    fabric: &Fabric,
    placement: &Placement,
    routing: &Routing,
) -> Result<(), String> {
    let conns = connections(netlist, rules);
    if conns.len() != routing.routes.len() {
        return Err(format!(
            "expected {} routes, found {}",
            conns.len(),
            routing.routes.len()
        ));
    }
    let mut usage: BTreeMap<(usize, bool), std::collections::BTreeSet<u32>> = BTreeMap::new();
    for r in &routing.routes {
        let src = placement.tile_of_node[r.producer as usize]
            .ok_or_else(|| format!("producer {} unplaced", r.producer))?;
        let dst = placement.tile_of_node[r.consumer as usize]
            .ok_or_else(|| format!("consumer {} unplaced", r.consumer))?;
        if r.path.first() != Some(&src) || r.path.last() != Some(&dst) {
            return Err(format!(
                "route {}→{} does not connect its endpoints",
                r.producer, r.consumer
            ));
        }
        for w in r.path.windows(2) {
            if fabric.distance(w[0], w[1]) != 1 {
                return Err("route hops between non-adjacent tiles".into());
            }
            usage
                .entry((fabric.link(w[0], w[1]), r.word))
                .or_default()
                .insert(r.producer);
        }
    }
    for (&(_, word), signals) in &usage {
        let cap = if word {
            fabric.config.word_tracks
        } else {
            fabric.config.bit_tracks
        };
        if signals.len() > cap {
            return Err(format!("link over capacity: {} > {cap}", signals.len()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;
    use crate::place::{place, PlaceOptions};
    use apex_map::map_application;
    use apex_pe::baseline_pe;
    use apex_rewrite::standard_ruleset;

    fn routed_gaussian() -> (Netlist, RuleSet, Fabric, Placement, Routing) {
        let app = apex_apps::gaussian();
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app.graph]).unwrap();
        let d = map_application(&app.graph, &pe.datapath, &rules).unwrap();
        let fabric = Fabric::new(FabricConfig::default());
        let placement = place(&d.netlist, &fabric, &PlaceOptions::default()).unwrap();
        let routing = route(&d.netlist, &rules, &fabric, &placement, &RouteOptions::default())
            .unwrap();
        (d.netlist, rules, fabric, placement, routing)
    }

    #[test]
    fn gaussian_routes_within_capacity() {
        let (netlist, rules, fabric, placement, routing) = routed_gaussian();
        verify_routed(&netlist, &rules, &fabric, &placement, &routing).unwrap();
        assert!(routing.total_hops() > 0);
        assert_eq!(routing.overflow_regs, 0);
    }

    #[test]
    fn route_count_matches_connection_count() {
        let (netlist, rules, _, _, routing) = routed_gaussian();
        assert_eq!(routing.routes.len(), connections(&netlist, &rules).len());
    }

    #[test]
    fn paths_are_shortest_when_uncongested() {
        let (_, _, fabric, _, routing) = routed_gaussian();
        // at least half the routes should be at Manhattan distance (light
        // congestion on a 32x16 array)
        let tight = routing
            .routes
            .iter()
            .filter(|r| r.hops() == fabric.distance(r.path[0], *r.path.last().unwrap()))
            .count();
        assert!(tight * 2 >= routing.routes.len());
    }

    #[test]
    fn congestion_fails_gracefully_on_tiny_fabrics() {
        // a 2-wide fabric with 1 track cannot carry gaussian
        let app = apex_apps::gaussian();
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app.graph]).unwrap();
        let d = map_application(&app.graph, &pe.datapath, &rules).unwrap();
        let fabric = Fabric::new(FabricConfig {
            width: 30,
            height: 10,
            word_tracks: 1,
            bit_tracks: 1,
            ..FabricConfig::default()
        });
        match place(&d.netlist, &fabric, &PlaceOptions::default()) {
            Err(_) => {} // capacity error is acceptable
            Ok(placement) => {
                let r = route(
                    &d.netlist,
                    &rules,
                    &fabric,
                    &placement,
                    &RouteOptions {
                        max_iterations: 2,
                        ..RouteOptions::default()
                    },
                );
                // either it squeezes through or reports congestion cleanly
                if let Err(e) = r {
                    assert!(matches!(e, RouteError::Congested { .. }));
                }
            }
        }
    }

    #[test]
    fn zero_deadline_reports_exhausted_budget() {
        let (netlist, rules, fabric, placement, _) = routed_gaussian();
        let err = route(
            &netlist,
            &rules,
            &fabric,
            &placement,
            &RouteOptions {
                budget: StageBudget::unlimited()
                    .with_deadline(std::time::Duration::ZERO),
                ..RouteOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            RouteError::Exhausted {
                provenance: Provenance::TimedOut
            }
        );
    }

    #[test]
    fn same_tile_connection_has_empty_route() {
        let f = Fabric::new(FabricConfig::default());
        let p = shortest_path(
            &f,
            f.at(1, 1),
            f.at(1, 1),
            true,
            0,
            5,
            &BTreeMap::new(),
            &BTreeMap::new(),
        );
        assert_eq!(p.len(), 1);
    }
}
