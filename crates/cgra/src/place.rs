//! Placement: assigning netlist nodes to fabric tiles.
//!
//! PE instances take PE tiles, register-file FIFOs take the register file
//! of a PE tile (shared with a PE instance if need be), application inputs
//! stream from memory tiles, outputs drain to I/O tiles, and pipeline
//! registers live in switch boxes along the routes (so they are not
//! placed here). A deterministic greedy seed is refined by simulated
//! annealing on total Manhattan wirelength.

use crate::fabric::{Fabric, TileId, TileKind};
use apex_fault::{ApexError, Stage};
use apex_map::{NetKind, Netlist};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Placement classes of netlist nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PlaceClass {
    /// PE compute slot (one per PE tile).
    PeSlot,
    /// Register-file slot (one per PE tile, independent of the PE slot).
    RfSlot,
    /// Memory streaming slot (two per memory tile — one per SRAM bank).
    MemSlot,
    /// I/O slot (two per I/O tile).
    IoSlot,
}

/// What class a netlist node needs, or `None` for nodes that live in the
/// interconnect (registers) .
pub fn place_class(kind: &NetKind) -> Option<PlaceClass> {
    match kind {
        NetKind::Pe(_) => Some(PlaceClass::PeSlot),
        NetKind::Fifo(_) => Some(PlaceClass::RfSlot),
        NetKind::WordInput | NetKind::BitInput => Some(PlaceClass::MemSlot),
        NetKind::WordOutput | NetKind::BitOutput => Some(PlaceClass::IoSlot),
        NetKind::Reg | NetKind::BitReg => None,
    }
}

/// A placement: netlist node → tile (placed nodes only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Tile per netlist node (`None` for interconnect registers).
    pub tile_of_node: Vec<Option<TileId>>,
    /// Total Manhattan wirelength of the collapsed netlist edges.
    pub wirelength: usize,
}

/// Placement failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// Not enough slots of a class.
    Capacity {
        /// The exhausted class.
        class: PlaceClass,
        /// Nodes needing the class.
        needed: usize,
        /// Slots available.
        available: usize,
    },
    /// The netlist is cyclic and cannot be swept topologically.
    Cyclic,
    /// A deterministic fault-injection site fired (tests only).
    Injected(&'static str),
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::Capacity {
                class,
                needed,
                available,
            } => write!(
                f,
                "fabric capacity exceeded for {class:?}: need {needed}, have {available}"
            ),
            PlaceError::Cyclic => write!(f, "netlist is cyclic"),
            PlaceError::Injected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for PlaceError {}

impl From<PlaceError> for ApexError {
    fn from(e: PlaceError) -> Self {
        ApexError::with_source(Stage::Place, e)
    }
}

/// Placement options.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceOptions {
    /// Simulated-annealing moves.
    pub moves: usize,
    /// RNG seed (placement is fully deterministic for a given seed).
    pub seed: u64,
    /// Initial annealing temperature (in wirelength units).
    pub start_temp: f64,
}

impl Default for PlaceOptions {
    fn default() -> Self {
        PlaceOptions {
            moves: 40_000,
            seed: 0xA5EED,
            start_temp: 8.0,
        }
    }
}

/// Follows an input reference through interconnect registers back to the
/// placeable producer, counting the registers traversed.
pub fn trace_through_regs(netlist: &Netlist, mut node: u32) -> (u32, u32) {
    let mut regs = 0;
    loop {
        match &netlist.nodes[node as usize].kind {
            NetKind::Reg | NetKind::BitReg => {
                regs += 1;
                node = netlist.nodes[node as usize].inputs[0].node;
            }
            _ => return (node, regs),
        }
    }
}

/// Edges of the collapsed netlist (registers folded into the wire).
pub fn placement_edges(netlist: &Netlist) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for (i, node) in netlist.nodes.iter().enumerate() {
        if place_class(&node.kind).is_none() {
            continue;
        }
        for r in &node.inputs {
            let (src, _regs) = trace_through_regs(netlist, r.node);
            edges.push((src, i as u32));
        }
    }
    edges
}

struct Slots {
    /// slot → tile
    tiles: Vec<TileId>,
    /// slot → occupying node
    occupant: Vec<Option<u32>>,
}

impl Slots {
    fn for_class(fabric: &Fabric, class: PlaceClass) -> Slots {
        let tiles: Vec<TileId> = match class {
            PlaceClass::PeSlot | PlaceClass::RfSlot => fabric.tiles_of(TileKind::Pe),
            PlaceClass::MemSlot => {
                let mut v = Vec::new();
                for t in fabric.tiles_of(TileKind::Mem) {
                    v.push(t);
                    v.push(t); // two banks
                }
                v
            }
            PlaceClass::IoSlot => {
                let mut v = Vec::new();
                for t in fabric.tiles_of(TileKind::Io) {
                    v.push(t);
                    v.push(t);
                }
                v
            }
        };
        let n = tiles.len();
        Slots {
            tiles,
            occupant: vec![None; n],
        }
    }
}

/// Places a netlist on the fabric.
///
/// # Errors
/// Fails if any placement class runs out of slots.
pub fn place(
    netlist: &Netlist,
    fabric: &Fabric,
    options: &PlaceOptions,
) -> Result<Placement, PlaceError> {
    apex_fault::fail_point!("place::start", PlaceError::Injected("place::start"));
    let classes = [
        PlaceClass::PeSlot,
        PlaceClass::RfSlot,
        PlaceClass::MemSlot,
        PlaceClass::IoSlot,
    ];
    let mut slots: BTreeMap<PlaceClass, Slots> = classes
        .iter()
        .map(|&c| (c, Slots::for_class(fabric, c)))
        .collect();

    // capacity check
    for &class in &classes {
        let needed = netlist
            .nodes
            .iter()
            .filter(|n| place_class(&n.kind) == Some(class))
            .count();
        let available = slots[&class].tiles.len();
        if needed > available {
            return Err(PlaceError::Capacity {
                class,
                needed,
                available,
            });
        }
    }

    let edges = placement_edges(netlist);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); netlist.nodes.len()];
    for &(a, b) in &edges {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }

    // greedy seed: topological sweep, each node to the free slot nearest
    // the centroid of its already-placed neighbours
    let order = netlist.topo_order().map_err(|_| PlaceError::Cyclic)?;
    let mut tile_of: Vec<Option<TileId>> = vec![None; netlist.nodes.len()];
    let mut slot_of: Vec<Option<(PlaceClass, usize)>> = vec![None; netlist.nodes.len()];
    for &u in &order {
        let Some(class) = place_class(&netlist.nodes[u as usize].kind) else {
            continue;
        };
        let placed_neigh: Vec<TileId> = adj[u as usize]
            .iter()
            .filter_map(|&v| tile_of[v as usize])
            .collect();
        // `slots` is seeded with every class; the defensive skip keeps the
        // placer free of panicking call sites
        let Some(s) = slots.get_mut(&class) else {
            continue;
        };
        let mut best: Option<(usize, usize)> = None; // (cost, slot)
        for (k, occ) in s.occupant.iter().enumerate() {
            if occ.is_some() {
                continue;
            }
            let cost: usize = if placed_neigh.is_empty() {
                // spread unconstrained nodes deterministically
                fabric.distance(s.tiles[k], fabric.at(fabric.config.height / 2, 0))
            } else {
                placed_neigh
                    .iter()
                    .map(|&t| fabric.distance(s.tiles[k], t))
                    .sum()
            };
            if best.is_none_or(|(bc, _)| cost < bc) {
                best = Some((cost, k));
            }
        }
        // the capacity pre-check guarantees a free slot; if that invariant
        // ever broke, report exhaustion instead of panicking
        let Some((_, k)) = best else {
            return Err(PlaceError::Capacity {
                class,
                needed: 1,
                available: 0,
            });
        };
        s.occupant[k] = Some(u);
        tile_of[u as usize] = Some(s.tiles[k]);
        slot_of[u as usize] = Some((class, k));
    }

    // simulated annealing refinement
    let mut seed = options.seed | 1;
    let mut rand = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let dist = |a: Option<TileId>, b: Option<TileId>| -> usize {
        match (a, b) {
            (Some(a), Some(b)) => fabric.distance(a, b),
            _ => 0,
        }
    };
    let cost_of = |u: u32, tile_of: &[Option<TileId>]| -> usize {
        adj[u as usize]
            .iter()
            .map(|&v| dist(tile_of[u as usize], tile_of[v as usize]))
            .sum()
    };
    let placeable: Vec<u32> = (0..netlist.nodes.len() as u32)
        .filter(|&u| slot_of[u as usize].is_some())
        .collect();
    let total_cost = |tile_of: &[Option<TileId>]| -> usize {
        edges
            .iter()
            .map(|&(a, b)| dist(tile_of[a as usize], tile_of[b as usize]))
            .sum()
    };
    let mut current = total_cost(&tile_of);
    let mut best_tiles = tile_of.clone();
    let mut best_cost = current;
    if !placeable.is_empty() {
        for step in 0..options.moves {
            let temp = options.start_temp
                * (1.0 - step as f64 / options.moves as f64).max(0.0001);
            let u = placeable[(rand() as usize) % placeable.len()];
            // `placeable` only lists nodes with a slot, and `slots` covers
            // every class; skip the move rather than panic if either breaks
            let Some((class, ku)) = slot_of[u as usize] else {
                continue;
            };
            let Some(s) = slots.get_mut(&class) else {
                continue;
            };
            let kv = (rand() as usize) % s.tiles.len();
            if kv == ku {
                continue;
            }
            let v = s.occupant[kv];
            if v == Some(u) {
                continue;
            }
            // compute delta
            let before = cost_of(u, &tile_of) + v.map_or(0, |v| cost_of(v, &tile_of));
            let mut trial = tile_of.clone();
            trial[u as usize] = Some(s.tiles[kv]);
            if let Some(v) = v {
                trial[v as usize] = Some(s.tiles[ku]);
            }
            let after = cost_of(u, &trial) + v.map_or(0, |v| cost_of(v, &trial));
            let delta = after as f64 - before as f64;
            let accept = delta <= 0.0 || {
                let p = (-delta / temp).exp();
                ((rand() >> 11) as f64 / (1u64 << 53) as f64) < p
            };
            if accept {
                current = (current as f64 + delta) as usize;
                tile_of = trial;
                s.occupant[ku] = v;
                s.occupant[kv] = Some(u);
                slot_of[u as usize] = Some((class, kv));
                if let Some(v) = v {
                    slot_of[v as usize] = Some((class, ku));
                }
                if current < best_cost {
                    best_cost = current;
                    best_tiles = tile_of.clone();
                }
            }
        }
    }

    let wirelength = total_cost(&best_tiles);
    Ok(Placement {
        tile_of_node: best_tiles,
        wirelength,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;
    use apex_map::map_application;
    use apex_pe::baseline_pe;
    use apex_rewrite::standard_ruleset;

    fn mapped_gaussian() -> (Netlist, apex_rewrite::RuleSet) {
        let app = apex_apps::gaussian();
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app.graph]).unwrap();
        let d = map_application(&app.graph, &pe.datapath, &rules).unwrap();
        (d.netlist, rules)
    }

    #[test]
    fn gaussian_places_on_default_fabric() {
        let (netlist, _) = mapped_gaussian();
        let fabric = Fabric::new(FabricConfig::default());
        let p = place(&netlist, &fabric, &PlaceOptions::default()).unwrap();
        // every placeable node has a tile of the right kind
        for (i, node) in netlist.nodes.iter().enumerate() {
            match place_class(&node.kind) {
                Some(PlaceClass::PeSlot | PlaceClass::RfSlot) => {
                    assert_eq!(fabric.kind(p.tile_of_node[i].unwrap()), TileKind::Pe);
                }
                Some(PlaceClass::MemSlot) => {
                    assert_eq!(fabric.kind(p.tile_of_node[i].unwrap()), TileKind::Mem);
                }
                Some(PlaceClass::IoSlot) => {
                    assert_eq!(fabric.kind(p.tile_of_node[i].unwrap()), TileKind::Io);
                }
                None => assert!(p.tile_of_node[i].is_none()),
            }
        }
    }

    #[test]
    fn pe_slots_are_exclusive() {
        let (netlist, _) = mapped_gaussian();
        let fabric = Fabric::new(FabricConfig::default());
        let p = place(&netlist, &fabric, &PlaceOptions::default()).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for (i, node) in netlist.nodes.iter().enumerate() {
            if matches!(node.kind, NetKind::Pe(_)) {
                assert!(seen.insert(p.tile_of_node[i].unwrap()), "PE tile reused");
            }
        }
    }

    #[test]
    fn annealing_does_not_worsen_the_seed() {
        let (netlist, _) = mapped_gaussian();
        let fabric = Fabric::new(FabricConfig::default());
        let seed_only = place(
            &netlist,
            &fabric,
            &PlaceOptions {
                moves: 0,
                ..PlaceOptions::default()
            },
        )
        .unwrap();
        let annealed = place(&netlist, &fabric, &PlaceOptions::default()).unwrap();
        assert!(
            annealed.wirelength <= seed_only.wirelength,
            "annealed {} vs seed {}",
            annealed.wirelength,
            seed_only.wirelength
        );
    }

    #[test]
    fn capacity_errors_are_reported() {
        let (netlist, _) = mapped_gaussian();
        let fabric = Fabric::new(FabricConfig {
            width: 4,
            height: 4,
            ..FabricConfig::default()
        });
        let err = place(&netlist, &fabric, &PlaceOptions::default()).unwrap_err();
        assert!(matches!(err, PlaceError::Capacity { .. }));
    }

    #[test]
    fn placement_is_deterministic() {
        let (netlist, _) = mapped_gaussian();
        let fabric = Fabric::new(FabricConfig::default());
        let a = place(&netlist, &fabric, &PlaceOptions::default()).unwrap();
        let b = place(&netlist, &fabric, &PlaceOptions::default()).unwrap();
        assert_eq!(a, b);
    }
}
