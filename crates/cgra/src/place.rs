//! Placement: assigning netlist nodes to fabric tiles.
//!
//! PE instances take PE tiles, register-file FIFOs take the register file
//! of a PE tile (shared with a PE instance if need be), application inputs
//! stream from memory tiles, outputs drain to I/O tiles, and pipeline
//! registers live in switch boxes along the routes (so they are not
//! placed here). A deterministic greedy seed is refined by simulated
//! annealing on total Manhattan wirelength.

use crate::fabric::{Fabric, TileId, TileKind};
use apex_fault::{ApexError, Stage};
use apex_map::{NetKind, Netlist};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Placement classes of netlist nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PlaceClass {
    /// PE compute slot (one per PE tile).
    PeSlot,
    /// Register-file slot (one per PE tile, independent of the PE slot).
    RfSlot,
    /// Memory streaming slot (two per memory tile — one per SRAM bank).
    MemSlot,
    /// I/O slot (two per I/O tile).
    IoSlot,
}

/// What class a netlist node needs, or `None` for nodes that live in the
/// interconnect (registers) .
pub fn place_class(kind: &NetKind) -> Option<PlaceClass> {
    match kind {
        NetKind::Pe(_) => Some(PlaceClass::PeSlot),
        NetKind::Fifo(_) => Some(PlaceClass::RfSlot),
        NetKind::WordInput | NetKind::BitInput => Some(PlaceClass::MemSlot),
        NetKind::WordOutput | NetKind::BitOutput => Some(PlaceClass::IoSlot),
        NetKind::Reg | NetKind::BitReg => None,
    }
}

/// A placement: netlist node → tile (placed nodes only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Tile per netlist node (`None` for interconnect registers).
    pub tile_of_node: Vec<Option<TileId>>,
    /// Total Manhattan wirelength of the collapsed netlist edges.
    pub wirelength: usize,
}

/// Placement failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// Not enough slots of a class.
    Capacity {
        /// The exhausted class.
        class: PlaceClass,
        /// Nodes needing the class.
        needed: usize,
        /// Slots available.
        available: usize,
    },
    /// The netlist is cyclic and cannot be swept topologically.
    Cyclic,
    /// A deterministic fault-injection site fired (tests only).
    Injected(&'static str),
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::Capacity {
                class,
                needed,
                available,
            } => write!(
                f,
                "fabric capacity exceeded for {class:?}: need {needed}, have {available}"
            ),
            PlaceError::Cyclic => write!(f, "netlist is cyclic"),
            PlaceError::Injected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for PlaceError {}

impl From<PlaceError> for ApexError {
    fn from(e: PlaceError) -> Self {
        ApexError::with_source(Stage::Place, e)
    }
}

/// Placement options.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceOptions {
    /// Simulated-annealing moves.
    pub moves: usize,
    /// RNG seed (placement is fully deterministic for a given seed).
    pub seed: u64,
    /// Initial annealing temperature (in wirelength units).
    pub start_temp: f64,
}

impl Default for PlaceOptions {
    fn default() -> Self {
        PlaceOptions {
            moves: 40_000,
            seed: 0xA5EED,
            start_temp: 8.0,
        }
    }
}

/// Follows an input reference through interconnect registers back to the
/// placeable producer, counting the registers traversed.
pub fn trace_through_regs(netlist: &Netlist, mut node: u32) -> (u32, u32) {
    let mut regs = 0;
    loop {
        match &netlist.nodes[node as usize].kind {
            NetKind::Reg | NetKind::BitReg => {
                regs += 1;
                node = netlist.nodes[node as usize].inputs[0].node;
            }
            _ => return (node, regs),
        }
    }
}

/// Edges of the collapsed netlist (registers folded into the wire).
pub fn placement_edges(netlist: &Netlist) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for (i, node) in netlist.nodes.iter().enumerate() {
        if place_class(&node.kind).is_none() {
            continue;
        }
        for r in &node.inputs {
            let (src, _regs) = trace_through_regs(netlist, r.node);
            edges.push((src, i as u32));
        }
    }
    edges
}

struct Slots {
    /// slot → tile
    tiles: Vec<TileId>,
    /// slot → occupying node
    occupant: Vec<Option<u32>>,
}

impl Slots {
    fn for_class(fabric: &Fabric, class: PlaceClass) -> Slots {
        let tiles: Vec<TileId> = match class {
            PlaceClass::PeSlot | PlaceClass::RfSlot => fabric.tiles_of(TileKind::Pe),
            PlaceClass::MemSlot => {
                let mut v = Vec::new();
                for t in fabric.tiles_of(TileKind::Mem) {
                    v.push(t);
                    v.push(t); // two banks
                }
                v
            }
            PlaceClass::IoSlot => {
                let mut v = Vec::new();
                for t in fabric.tiles_of(TileKind::Io) {
                    v.push(t);
                    v.push(t);
                }
                v
            }
        };
        let n = tiles.len();
        Slots {
            tiles,
            occupant: vec![None; n],
        }
    }
}

/// Places a netlist on the fabric.
///
/// # Errors
/// Fails if any placement class runs out of slots.
pub fn place(
    netlist: &Netlist,
    fabric: &Fabric,
    options: &PlaceOptions,
) -> Result<Placement, PlaceError> {
    apex_fault::fail_point!("place::start", PlaceError::Injected("place::start"));
    let classes = [
        PlaceClass::PeSlot,
        PlaceClass::RfSlot,
        PlaceClass::MemSlot,
        PlaceClass::IoSlot,
    ];
    // dense per-class slot tables (indexed by `ci`, not a map probe)
    let ci = |class: PlaceClass| -> usize {
        match class {
            PlaceClass::PeSlot => 0,
            PlaceClass::RfSlot => 1,
            PlaceClass::MemSlot => 2,
            PlaceClass::IoSlot => 3,
        }
    };
    let mut slots: Vec<Slots> = classes.iter().map(|&c| Slots::for_class(fabric, c)).collect();

    // capacity check
    for &class in &classes {
        let needed = netlist
            .nodes
            .iter()
            .filter(|n| place_class(&n.kind) == Some(class))
            .count();
        let available = slots[ci(class)].tiles.len();
        if needed > available {
            return Err(PlaceError::Capacity {
                class,
                needed,
                available,
            });
        }
    }

    // flat (row, col) tables: the annealing loop takes the distance
    // metric four times per move, so decode each tile's coordinates once
    // instead of dividing per call
    let mut rows = vec![0u32; fabric.len()];
    let mut cols = vec![0u32; fabric.len()];
    for t in 0..fabric.len() {
        let (r, c) = fabric.coords(TileId(t as u32));
        rows[t] = r as u32;
        cols[t] = c as u32;
    }
    let tdist = |a: TileId, b: TileId| -> usize {
        (rows[a.0 as usize].abs_diff(rows[b.0 as usize])
            + cols[a.0 as usize].abs_diff(cols[b.0 as usize])) as usize
    };

    // CSR adjacency of the collapsed netlist
    let edges = placement_edges(netlist);
    let n = netlist.nodes.len();
    let mut adj_off = vec![0u32; n + 1];
    for &(a, b) in &edges {
        adj_off[a as usize + 1] += 1;
        adj_off[b as usize + 1] += 1;
    }
    for i in 0..n {
        adj_off[i + 1] += adj_off[i];
    }
    let mut adj_to = vec![0u32; edges.len() * 2];
    let mut cursor = adj_off.clone();
    for &(a, b) in &edges {
        adj_to[cursor[a as usize] as usize] = b;
        cursor[a as usize] += 1;
        adj_to[cursor[b as usize] as usize] = a;
        cursor[b as usize] += 1;
    }
    let adj = |u: u32| -> &[u32] {
        &adj_to[adj_off[u as usize] as usize..adj_off[u as usize + 1] as usize]
    };

    // packed (row << 16 | col) per tile: both the greedy seed scan and
    // the annealing inner loop reduce a candidate's cost to shifts and
    // abs_diffs on one u32 instead of two table lookups per axis
    let tile_pos: Vec<u32> = (0..fabric.len()).map(|t| (rows[t] << 16) | cols[t]).collect();

    // greedy seed: topological sweep, each node to the free slot nearest
    // the centroid of its already-placed neighbours. Free slots live in
    // per-class parallel arrays (ascending slot index, packed position)
    // so the scan is a dense sequential pass over exactly the open slots
    // instead of an occupancy-branching walk over all of them — the
    // ascending order preserves the reference tie-break (first strict
    // improvement wins = lowest slot index)
    let order = netlist.topo_order().map_err(|_| PlaceError::Cyclic)?;
    let mut tile_of: Vec<Option<TileId>> = vec![None; netlist.nodes.len()];
    let mut slot_of: Vec<Option<(PlaceClass, usize)>> = vec![None; netlist.nodes.len()];
    let mut free_ks: Vec<Vec<u32>> = slots
        .iter()
        .map(|s| (0..s.tiles.len() as u32).collect())
        .collect();
    let mut free_pos: Vec<Vec<u32>> = slots
        .iter()
        .map(|s| s.tiles.iter().map(|t| tile_pos[t.0 as usize]).collect())
        .collect();
    // Manhattan distance decomposes into independent row and column
    // terms, so the neighbour-distance sum for every candidate row (and
    // column) comes from one counting sweep per node instead of a
    // per-slot scan over the neighbour list. Scratch reused across nodes.
    let n_rows = fabric.config.height + 1; // +1: the I/O row
    let n_cols = fabric.config.width;
    let mut row_cnt = vec![0i64; n_rows];
    let mut col_cnt = vec![0i64; n_cols];
    let mut row_cost = vec![0i64; n_rows];
    let mut col_cost = vec![0i64; n_cols];
    // cost[k] = Σ_j cnt[j] * |k - j|, via one forward + one backward pass
    fn axis_costs(cnt: &[i64], cost: &mut [i64]) {
        let (mut seen, mut acc) = (0i64, 0i64);
        for k in 0..cnt.len() {
            acc += seen;
            cost[k] = acc;
            seen += cnt[k];
        }
        let (mut seen, mut acc) = (0i64, 0i64);
        for k in (0..cnt.len()).rev() {
            acc += seen;
            cost[k] += acc;
            seen += cnt[k];
        }
    }
    let center_row = (fabric.config.height / 2) as u32;
    for &u in &order {
        let Some(class) = place_class(&netlist.nodes[u as usize].kind) else {
            continue;
        };
        row_cnt.fill(0);
        col_cnt.fill(0);
        let mut n_placed = 0usize;
        for &v in adj(u) {
            if let Some(t) = tile_of[v as usize] {
                n_placed += 1;
                row_cnt[rows[t.0 as usize] as usize] += 1;
                col_cnt[cols[t.0 as usize] as usize] += 1;
            }
        }
        let c = ci(class);
        let mut best: Option<(usize, usize)> = None; // (cost, free-list index)
        if n_placed == 0 {
            // spread unconstrained nodes deterministically (distance to
            // the (height/2, 0) centre tile)
            for (i, &p) in free_pos[c].iter().enumerate() {
                let cost = ((p >> 16).abs_diff(center_row) + (p & 0xFFFF)) as usize;
                if best.is_none_or(|(bc, _)| cost < bc) {
                    best = Some((cost, i));
                }
            }
        } else {
            axis_costs(&row_cnt, &mut row_cost);
            axis_costs(&col_cnt, &mut col_cost);
            for (i, &p) in free_pos[c].iter().enumerate() {
                let cost = (row_cost[(p >> 16) as usize] + col_cost[(p & 0xFFFF) as usize]) as usize;
                if best.is_none_or(|(bc, _)| cost < bc) {
                    best = Some((cost, i));
                }
            }
        }
        // the capacity pre-check guarantees a free slot; if that invariant
        // ever broke, report exhaustion instead of panicking
        let Some((_, i)) = best else {
            return Err(PlaceError::Capacity {
                class,
                needed: 1,
                available: 0,
            });
        };
        let k = free_ks[c][i] as usize;
        free_ks[c].remove(i);
        free_pos[c].remove(i);
        let s = &mut slots[c];
        s.occupant[k] = Some(u);
        tile_of[u as usize] = Some(s.tiles[k]);
        slot_of[u as usize] = Some((class, k));
    }

    // simulated annealing refinement
    let mut seed = options.seed | 1;
    let mut rand = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let dist = |a: Option<TileId>, b: Option<TileId>| -> usize {
        match (a, b) {
            (Some(a), Some(b)) => tdist(a, b),
            _ => 0,
        }
    };
    // packed position per node for the annealing inner loop. Every
    // adjacency endpoint is a placed placeable node (placement_edges only
    // emits placeable–placeable edges and the greedy seed placed them
    // all), so the Option indirection of `tile_of` is dead weight in the
    // per-move cost sums.
    let mut pos: Vec<u32> = tile_of
        .iter()
        .map(|t| t.map_or(0, |t| tile_pos[t.0 as usize]))
        .collect();
    let pdist = |a: u32, b: u32| -> usize {
        ((a >> 16).abs_diff(b >> 16) + (a & 0xFFFF).abs_diff(b & 0xFFFF)) as usize
    };
    let cost_of = |u: u32, pos: &[u32]| -> usize {
        let pu = pos[u as usize];
        adj(u).iter().map(|&v| pdist(pu, pos[v as usize])).sum()
    };
    let placeable: Vec<u32> = (0..netlist.nodes.len() as u32)
        .filter(|&u| slot_of[u as usize].is_some())
        .collect();
    let total_cost = |tile_of: &[Option<TileId>]| -> usize {
        edges
            .iter()
            .map(|&(a, b)| dist(tile_of[a as usize], tile_of[b as usize]))
            .sum()
    };
    let mut current = total_cost(&tile_of);
    let mut best_tiles = tile_of.clone();
    let mut best_cost = current;
    // accepted moves since `best_tiles` was last synced; replaying this
    // log on a new best reproduces `tile_of` exactly (rejected moves are
    // reverted before they could land here) without an O(nodes) clone
    let mut best_log: Vec<(u32, Option<TileId>)> = Vec::new();
    if !placeable.is_empty() {
        for step in 0..options.moves {
            let temp = options.start_temp
                * (1.0 - step as f64 / options.moves as f64).max(0.0001);
            let u = placeable[(rand() as usize) % placeable.len()];
            // `placeable` only lists nodes with a slot, and `slots` covers
            // every class; skip the move rather than panic if either breaks
            let Some((class, ku)) = slot_of[u as usize] else {
                continue;
            };
            let s = &mut slots[ci(class)];
            let kv = (rand() as usize) % s.tiles.len();
            if kv == ku {
                continue;
            }
            let v = s.occupant[kv];
            if v == Some(u) {
                continue;
            }
            // delta cost over the touched nodes' adjacency only; the move
            // is applied in place and reverted on rejection (no per-move
            // clone of the tile vector)
            let before = cost_of(u, &pos) + v.map_or(0, |v| cost_of(v, &pos));
            let old_u = tile_of[u as usize];
            let old_v = v.map(|v| tile_of[v as usize]);
            tile_of[u as usize] = Some(s.tiles[kv]);
            pos[u as usize] = tile_pos[s.tiles[kv].0 as usize];
            if let Some(v) = v {
                tile_of[v as usize] = Some(s.tiles[ku]);
                pos[v as usize] = tile_pos[s.tiles[ku].0 as usize];
            }
            let after = cost_of(u, &pos) + v.map_or(0, |v| cost_of(v, &pos));
            let delta = after as f64 - before as f64;
            let accept = delta <= 0.0 || {
                let p = (-delta / temp).exp();
                ((rand() >> 11) as f64 / (1u64 << 53) as f64) < p
            };
            if accept {
                current = (current as f64 + delta) as usize;
                s.occupant[ku] = v;
                s.occupant[kv] = Some(u);
                slot_of[u as usize] = Some((class, kv));
                if let Some(v) = v {
                    slot_of[v as usize] = Some((class, ku));
                }
                best_log.push((u, tile_of[u as usize]));
                if let Some(v) = v {
                    best_log.push((v, tile_of[v as usize]));
                }
                if current < best_cost {
                    best_cost = current;
                    for &(n, t) in &best_log {
                        best_tiles[n as usize] = t;
                    }
                    best_log.clear();
                }
            } else {
                tile_of[u as usize] = old_u;
                pos[u as usize] = old_u.map_or(0, |t| tile_pos[t.0 as usize]);
                if let Some(v) = v {
                    tile_of[v as usize] = old_v.flatten();
                    pos[v as usize] =
                        old_v.flatten().map_or(0, |t| tile_pos[t.0 as usize]);
                }
            }
        }
    }

    let wirelength = total_cost(&best_tiles);
    Ok(Placement {
        tile_of_node: best_tiles,
        wirelength,
    })
}

/// Process-wide placement memo: full key string kept alongside the FNV
/// hash so a collision can never return a wrong placement (the hit is
/// verified against the key, a mismatch just recomputes).
static PLACE_MEMO: std::sync::Mutex<BTreeMap<u64, (Box<str>, Placement)>> =
    std::sync::Mutex::new(BTreeMap::new());

/// Bound on memo entries; a DSE sweep revisits the same handful of
/// (app, fabric-shape) keys, so a small table is plenty. Clearing on
/// overflow is deterministic (no LRU clock).
const PLACE_MEMO_CAP: usize = 256;

/// Everything `place` depends on: the collapsed netlist structure (node
/// placement classes + input wiring — rule indices and payloads are
/// deliberately excluded so sibling PE variants with identical collapsed
/// structure share one placement), the fabric shape, and the annealing
/// options.
fn place_memo_key(netlist: &Netlist, fabric: &Fabric, options: &PlaceOptions) -> String {
    use std::fmt::Write;
    let c = &fabric.config;
    let mut s = String::with_capacity(16 * netlist.nodes.len() + 64);
    let _ = write!(
        s,
        "f{},{},{},{},{}|o{},{},{:x}",
        c.width,
        c.height,
        c.mem_column_stride,
        c.word_tracks,
        c.bit_tracks,
        options.moves,
        options.seed,
        options.start_temp.to_bits()
    );
    for node in &netlist.nodes {
        let tag = match &node.kind {
            NetKind::WordInput => 'w',
            NetKind::BitInput => 'b',
            NetKind::Pe(_) => 'p',
            NetKind::Reg => 'r',
            NetKind::BitReg => 'q',
            NetKind::Fifo(_) => 'f',
            NetKind::WordOutput => 'o',
            NetKind::BitOutput => 'z',
        };
        s.push(';');
        s.push(tag);
        for r in &node.inputs {
            let _ = write!(s, ",{}", r.node);
        }
    }
    s
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// [`place`] behind a content-addressed memo keyed on the collapsed
/// netlist structure, fabric shape, and options: a DSE sweep places the
/// same (app, fabric-shape) pair once per sibling-variant family instead
/// of re-annealing it per variant. Deterministic regardless of cache
/// state — `place` is a pure function of exactly the key contents, so a
/// hit returns bit-identically what a miss would compute.
///
/// # Errors
/// Fails if any placement class runs out of slots.
pub fn place_cached(
    netlist: &Netlist,
    fabric: &Fabric,
    options: &PlaceOptions,
) -> Result<Placement, PlaceError> {
    apex_fault::fail_point!("place::start", PlaceError::Injected("place::start"));
    let key = place_memo_key(netlist, fabric, options);
    let hash = fnv1a(key.as_bytes());
    // a poisoned lock (a panicking thread mid-insert) falls back to the
    // uncached path rather than unwrapping
    if let Ok(memo) = PLACE_MEMO.lock() {
        if let Some((stored, placement)) = memo.get(&hash) {
            if **stored == *key {
                return Ok(placement.clone());
            }
        }
    }
    let placement = place(netlist, fabric, options)?;
    if let Ok(mut memo) = PLACE_MEMO.lock() {
        if memo.len() >= PLACE_MEMO_CAP {
            memo.clear();
        }
        memo.insert(hash, (key.into_boxed_str(), placement.clone()));
    }
    Ok(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;
    use apex_map::map_application;
    use apex_pe::baseline_pe;
    use apex_rewrite::standard_ruleset;

    fn mapped_gaussian() -> (Netlist, apex_rewrite::RuleSet) {
        let app = apex_apps::gaussian();
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app.graph]).unwrap();
        let d = map_application(&app.graph, &pe.datapath, &rules).unwrap();
        (d.netlist, rules)
    }

    #[test]
    fn gaussian_places_on_default_fabric() {
        let (netlist, _) = mapped_gaussian();
        let fabric = Fabric::new(FabricConfig::default());
        let p = place(&netlist, &fabric, &PlaceOptions::default()).unwrap();
        // every placeable node has a tile of the right kind
        for (i, node) in netlist.nodes.iter().enumerate() {
            match place_class(&node.kind) {
                Some(PlaceClass::PeSlot | PlaceClass::RfSlot) => {
                    assert_eq!(fabric.kind(p.tile_of_node[i].unwrap()), TileKind::Pe);
                }
                Some(PlaceClass::MemSlot) => {
                    assert_eq!(fabric.kind(p.tile_of_node[i].unwrap()), TileKind::Mem);
                }
                Some(PlaceClass::IoSlot) => {
                    assert_eq!(fabric.kind(p.tile_of_node[i].unwrap()), TileKind::Io);
                }
                None => assert!(p.tile_of_node[i].is_none()),
            }
        }
    }

    #[test]
    fn pe_slots_are_exclusive() {
        let (netlist, _) = mapped_gaussian();
        let fabric = Fabric::new(FabricConfig::default());
        let p = place(&netlist, &fabric, &PlaceOptions::default()).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for (i, node) in netlist.nodes.iter().enumerate() {
            if matches!(node.kind, NetKind::Pe(_)) {
                assert!(seen.insert(p.tile_of_node[i].unwrap()), "PE tile reused");
            }
        }
    }

    #[test]
    fn annealing_does_not_worsen_the_seed() {
        let (netlist, _) = mapped_gaussian();
        let fabric = Fabric::new(FabricConfig::default());
        let seed_only = place(
            &netlist,
            &fabric,
            &PlaceOptions {
                moves: 0,
                ..PlaceOptions::default()
            },
        )
        .unwrap();
        let annealed = place(&netlist, &fabric, &PlaceOptions::default()).unwrap();
        assert!(
            annealed.wirelength <= seed_only.wirelength,
            "annealed {} vs seed {}",
            annealed.wirelength,
            seed_only.wirelength
        );
    }

    #[test]
    fn capacity_errors_are_reported() {
        let (netlist, _) = mapped_gaussian();
        let fabric = Fabric::new(FabricConfig {
            width: 4,
            height: 4,
            ..FabricConfig::default()
        });
        let err = place(&netlist, &fabric, &PlaceOptions::default()).unwrap_err();
        assert!(matches!(err, PlaceError::Capacity { .. }));
    }

    #[test]
    fn cached_placement_matches_uncached() {
        let (netlist, _) = mapped_gaussian();
        let fabric = Fabric::new(FabricConfig::default());
        let direct = place(&netlist, &fabric, &PlaceOptions::default()).unwrap();
        // miss then hit: both must equal the uncached result exactly
        let miss = place_cached(&netlist, &fabric, &PlaceOptions::default()).unwrap();
        let hit = place_cached(&netlist, &fabric, &PlaceOptions::default()).unwrap();
        assert_eq!(direct, miss);
        assert_eq!(direct, hit);
    }

    #[test]
    fn memo_key_separates_options_and_shapes() {
        let (netlist, _) = mapped_gaussian();
        let fabric = Fabric::new(FabricConfig::default());
        let base = place_memo_key(&netlist, &fabric, &PlaceOptions::default());
        let other_seed = place_memo_key(
            &netlist,
            &fabric,
            &PlaceOptions {
                seed: 7,
                ..PlaceOptions::default()
            },
        );
        assert_ne!(base, other_seed);
        let tall = Fabric::new(FabricConfig {
            height: 20,
            ..FabricConfig::default()
        });
        assert_ne!(base, place_memo_key(&netlist, &tall, &PlaceOptions::default()));
    }

    #[test]
    fn placement_is_deterministic() {
        let (netlist, _) = mapped_gaussian();
        let fabric = Fabric::new(FabricConfig::default());
        let a = place(&netlist, &fabric, &PlaceOptions::default()).unwrap();
        let b = place(&netlist, &fabric, &PlaceOptions::default()).unwrap();
        assert_eq!(a, b);
    }
}
