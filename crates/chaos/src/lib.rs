//! # apex-chaos — deterministic chaos campaigns for the APEX toolchain
//!
//! A chaos campaign answers one question mechanically: *for every fault
//! the workspace knows how to inject, does the pipeline keep its
//! documented promises?* The campaign:
//!
//! 1. **Enumerates fault schedules** deterministically from
//!    [`apex_fault::FAILPOINT_CATALOG`] and a seed — one schedule per
//!    catalog site first (so every registered fail point is exercised),
//!    then seeded multi-fault combinations. A schedule names the sites
//!    to arm, the hit on which each fires, the execution mode
//!    (in-process sweep or a real daemon over TCP), and an optional
//!    memory budget ([`apex_fault::ResourceBudget`]).
//! 2. **Runs the workload** under each schedule: a reference run with no
//!    faults, the faulted run (under `catch_unwind`, so an escaped panic
//!    is evidence rather than a crashed campaign), and two `--resume`
//!    runs after the fault is disarmed.
//! 3. **Asserts the invariant battery** after every schedule — see
//!    [`campaign`] for the exact list: no escaped panics, only
//!    documented (flagged) outcome divergence, byte-identical resume
//!    replays, a torn-free journal, a corruption-free variant cache,
//!    and `apex-verify` passes on surviving variants.
//! 4. **Reports** one JSONL line per schedule; the `apex chaos` CLI
//!    exits nonzero if any schedule violated an invariant.
//!
//! Everything is a pure function of `(seed, schedule count)`: the same
//! invocation replays the same faults on the same hits, so a red
//! campaign in CI reproduces locally with the same two numbers.
//!
//! The schedule enumerator and report types compile unconditionally;
//! actually *running* a campaign requires the `fault-injection` feature
//! (the stage crates compile their fail-point sites out otherwise), and
//! [`run_campaign`] returns an error directing the caller to rebuild
//! when the feature is missing.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use apex_fault::FAILPOINT_CATALOG;

mod campaign;
pub use campaign::{run_campaign, CampaignReport, ChaosConfig, ScheduleReport};

// ---------------------------------------------------------------------------
// deterministic randomness
// ---------------------------------------------------------------------------

/// SplitMix64 — the workspace's standard tiny deterministic generator
/// (the same mixer the serve client uses for backoff jitter). Good
/// enough to spread schedule parameters; never used for anything
/// security-relevant.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

// ---------------------------------------------------------------------------
// schedules
// ---------------------------------------------------------------------------

/// How a schedule executes its workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// An in-process checkpointed sweep (mine → merge → … → evaluate on
    /// the benchmark trio), plus an explicit variant-cache store/evict
    /// step so the I/O-fault sites on the cache path are reachable.
    InProcess,
    /// A real daemon on an ephemeral TCP port driven through the serve
    /// client — the only mode where the connection-level sites
    /// (`serve::slow_client`, `serve::accept_error`,
    /// `serve::mid_job_kill`) can fire.
    Daemon,
}

impl Mode {
    /// Stable wire name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Mode::InProcess => "in_process",
            Mode::Daemon => "daemon",
        }
    }
}

/// One fault to arm: the site name and the hit on which it fires
/// (1 = the first time the site is reached).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedFault {
    /// Catalog site name (e.g. `mine::start`).
    pub site: String,
    /// Fire on the `nth` time the site is hit.
    pub nth: u64,
}

/// One deterministic campaign entry: which faults, when, and under what
/// execution mode and memory budget.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Position in the campaign (stable for a given seed).
    pub id: usize,
    /// The faults armed together for this run.
    pub faults: Vec<PlannedFault>,
    /// Execution mode.
    pub mode: Mode,
    /// Memory budget in bytes for the miner/merger resource meters
    /// (`None` = unlimited), making resource exhaustion a schedulable
    /// fault like any other.
    pub mem_budget: Option<u64>,
}

/// Sites that only fire on the daemon's socket path; a schedule arming
/// any of them must run in [`Mode::Daemon`].
fn daemon_only(site: &str) -> bool {
    matches!(
        site,
        "serve::slow_client" | "serve::accept_error" | "serve::mid_job_kill"
    )
}

/// Enumerates `count` schedules for `seed`, deterministically.
///
/// The first `FAILPOINT_CATALOG.len()` schedules arm exactly one
/// catalog site each, in catalog order — every registered fail point is
/// exercised before any combination is tried. Later schedules arm
/// seeded combinations of two or three sites. Firing hits are seeded in
/// `1..=3`; every sixth in-process schedule additionally runs under a
/// tight seeded memory budget (1–8 KiB), so resource exhaustion is part
/// of the standard sweep.
pub fn enumerate_schedules(count: usize, seed: u64) -> Vec<Schedule> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(count);
    for id in 0..count {
        let faults: Vec<PlannedFault> = if let Some(info) = FAILPOINT_CATALOG.get(id) {
            vec![PlannedFault {
                site: info.name.to_owned(),
                nth: 1 + rng.below(3),
            }]
        } else {
            let k = 2 + rng.below(2) as usize;
            let mut picked = Vec::with_capacity(k);
            while picked.len() < k {
                let site = FAILPOINT_CATALOG[rng.below(FAILPOINT_CATALOG.len() as u64) as usize]
                    .name
                    .to_owned();
                if !picked.iter().any(|f: &PlannedFault| f.site == site) {
                    picked.push(PlannedFault {
                        site,
                        nth: 1 + rng.below(3),
                    });
                }
            }
            picked
        };
        let mode = if faults.iter().any(|f| daemon_only(&f.site)) {
            Mode::Daemon
        } else {
            Mode::InProcess
        };
        let mem_budget = if mode == Mode::InProcess && id % 6 == 2 {
            Some(1024u64 << rng.below(4))
        } else {
            None
        };
        out.push(Schedule {
            id,
            faults,
            mode,
            mem_budget,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// tiny JSON helpers (report emission; mirrors the serve wire codec)
// ---------------------------------------------------------------------------

/// Escapes `s` as the body of a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl Schedule {
    /// The schedule as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let faults: Vec<String> = self
            .faults
            .iter()
            .map(|f| format!("{{\"site\":\"{}\",\"nth\":{}}}", json_escape(&f.site), f.nth))
            .collect();
        let budget = self
            .mem_budget
            .map_or("null".to_owned(), |b| b.to_string());
        format!(
            "{{\"schedule\":{},\"mode\":\"{}\",\"faults\":[{}],\"mem_budget\":{}}}",
            self.id,
            self.mode.name(),
            faults.join(","),
            budget
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_deterministic_and_covers_the_catalog() {
        let a = enumerate_schedules(40, 7);
        let b = enumerate_schedules(40, 7);
        assert_eq!(a.len(), 40);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.faults, y.faults);
            assert_eq!(x.mode, y.mode);
            assert_eq!(x.mem_budget, y.mem_budget);
        }
        // every catalog site appears as a single-fault schedule first
        for (i, info) in FAILPOINT_CATALOG.iter().enumerate() {
            assert_eq!(a[i].faults.len(), 1);
            assert_eq!(a[i].faults[0].site, info.name);
            assert!(a[i].faults[0].nth >= 1 && a[i].faults[0].nth <= 3);
        }
        // combos beyond the catalog arm 2–3 distinct sites
        for s in &a[FAILPOINT_CATALOG.len()..] {
            assert!(s.faults.len() >= 2 && s.faults.len() <= 3);
            let mut sites: Vec<&str> = s.faults.iter().map(|f| f.site.as_str()).collect();
            sites.sort_unstable();
            sites.dedup();
            assert_eq!(sites.len(), s.faults.len(), "combo sites must be distinct");
        }
    }

    #[test]
    fn first_schedules_include_daemon_enospc_and_budget_runs() {
        // the acceptance shape for `apex chaos --schedules 24 --seed 7`:
        // within the first 24 schedules the campaign must reach daemon
        // mode, injected ENOSPC, and a memory-budget run
        let s = enumerate_schedules(24, 7);
        assert!(s.iter().any(|x| x.mode == Mode::Daemon));
        assert!(s
            .iter()
            .any(|x| x.faults.iter().any(|f| f.site.ends_with("enospc"))));
        assert!(s.iter().any(|x| x.mem_budget.is_some()));
    }

    #[test]
    fn seeds_change_the_plan_but_not_the_site_order() {
        let a = enumerate_schedules(24, 7);
        let b = enumerate_schedules(24, 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.faults[0].site, y.faults[0].site);
        }
        assert!(
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.faults[0].nth != y.faults[0].nth),
            "different seeds must vary the firing hits somewhere"
        );
    }

    #[test]
    fn daemon_only_sites_run_in_daemon_mode() {
        for s in enumerate_schedules(100, 3) {
            let needs_daemon = s.faults.iter().any(|f| daemon_only(&f.site));
            assert_eq!(needs_daemon, s.mode == Mode::Daemon, "schedule {}", s.id);
        }
    }

    #[test]
    fn schedule_json_is_stable() {
        let s = Schedule {
            id: 3,
            faults: vec![PlannedFault {
                site: "mine::start".to_owned(),
                nth: 2,
            }],
            mode: Mode::InProcess,
            mem_budget: Some(2048),
        };
        assert_eq!(
            s.to_json(),
            "{\"schedule\":3,\"mode\":\"in_process\",\
             \"faults\":[{\"site\":\"mine::start\",\"nth\":2}],\"mem_budget\":2048}"
        );
    }

    #[test]
    fn json_escape_handles_control_and_quote_bytes() {
        assert_eq!(json_escape("a\"b\\c\nd\x01"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
