//! Campaign execution: run every schedule, assert the invariant
//! battery, collect a JSONL report.
//!
//! # The invariant battery
//!
//! After every schedule (reference run → faulted run → two disarmed
//! `--resume` runs) the campaign requires:
//!
//! 1. **No escaped panic.** The faulted run executes under
//!    `catch_unwind`; a panic that the pipeline's own degradation
//!    machinery did not absorb is a violation (injected *internal*
//!    panics — `rewrite::synth_panic`, `core::mine_panic` — are caught
//!    by the pipeline and must surface as degradations, not unwinds).
//! 2. **Only documented divergence.** Every job outcome either matches
//!    the reference run byte-for-byte or is *flagged* — its report
//!    carries a non-`Completed` provenance or a non-empty degradation
//!    summary. Silent wrong answers are the one unforgivable outcome.
//! 3. **Resume determinism.** With faults disarmed, two consecutive
//!    `--resume` runs over the faulted journal are byte-identical, and
//!    resumed jobs that never concluded under fault match the
//!    uninterrupted reference.
//! 4. **Torn-free journal.** Replaying the faulted journal must drop
//!    zero torn and zero corrupt records: our own writer rolls back
//!    failed appends, so anything torn is a rollback bug.
//! 5. **Corruption-free cache.** Every `.var` entry in the schedule's
//!    variant cache decodes; corrupt entries may exist only in
//!    quarantine (`.corrupt`), and no tmp residue survives.
//! 6. **Verified survivors.** The variant that survives the faulted run
//!    passes the `apex-verify` datapath and ruleset checkers.
//!
//! Campaigns are process-global (the fail-point registry and the
//! interrupt flag are singletons), so schedules run strictly one at a
//! time; the runner disarms everything and resets the interrupt flag
//! between schedules.

use crate::{json_escape, Schedule};
use apex_fault::ApexError;
use std::path::PathBuf;

/// Campaign parameters (the `apex chaos` flags).
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// How many schedules to enumerate and run.
    pub schedules: usize,
    /// Seed for the schedule enumerator.
    pub seed: u64,
    /// Scratch root for per-schedule journals and caches; defaults to a
    /// per-process directory under the system temp dir. Evidence for
    /// violated schedules is kept; clean schedules are removed.
    pub scratch: Option<PathBuf>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            schedules: 24,
            seed: 7,
            scratch: None,
        }
    }
}

/// One schedule's verdict.
#[derive(Debug)]
pub struct ScheduleReport {
    /// The schedule that ran.
    pub schedule: Schedule,
    /// Invariant violations found (empty = the schedule passed).
    pub violations: Vec<String>,
}

impl ScheduleReport {
    /// One JSONL line for this schedule.
    pub fn to_json(&self) -> String {
        let body = self.schedule.to_json();
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| format!("\"{}\"", json_escape(v)))
            .collect();
        let status = if self.violations.is_empty() {
            "ok"
        } else {
            "violation"
        };
        // splice status/violations into the schedule object
        let trimmed = body.trim_end_matches('}');
        format!(
            "{trimmed},\"status\":\"{status}\",\"violations\":[{}]}}",
            violations.join(",")
        )
    }
}

/// The whole campaign's outcome.
#[derive(Debug)]
pub struct CampaignReport {
    /// The seed the schedules were enumerated from.
    pub seed: u64,
    /// Per-schedule verdicts, in schedule order.
    pub runs: Vec<ScheduleReport>,
}

impl CampaignReport {
    /// Total invariant violations across all schedules.
    pub fn total_violations(&self) -> usize {
        self.runs.iter().map(|r| r.violations.len()).sum()
    }

    /// Schedules with at least one violation.
    pub fn violated_schedules(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| !r.violations.is_empty())
            .count()
    }

    /// The report as JSONL: a campaign header line, then one line per
    /// schedule.
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"campaign\":\"apex-chaos\",\"seed\":{},\"schedules\":{},\
             \"violations\":{}}}\n",
            self.seed,
            self.runs.len(),
            self.total_violations()
        );
        for run in &self.runs {
            out.push_str(&run.to_json());
            out.push('\n');
        }
        out
    }
}

/// Runs the campaign described by `config`.
///
/// # Errors
/// Scratch-directory I/O failures, or — in builds without the
/// `fault-injection` feature — an error directing the caller to
/// rebuild, since no fail-point site can fire in such a build and every
/// schedule would pass vacuously.
#[cfg(not(feature = "fault-injection"))]
pub fn run_campaign(_config: &ChaosConfig) -> Result<CampaignReport, ApexError> {
    Err(ApexError::new(
        apex_fault::Stage::Cli,
        "chaos campaigns need injectable faults; rebuild with \
         `--features fault-injection` (the sites are compiled out of \
         this binary, so every schedule would pass without testing \
         anything)",
    ))
}

/// Runs the campaign described by `config`.
///
/// # Errors
/// Scratch-directory I/O failures.
#[cfg(feature = "fault-injection")]
pub fn run_campaign(config: &ChaosConfig) -> Result<CampaignReport, ApexError> {
    inject::run(config)
}

#[cfg(feature = "fault-injection")]
mod inject {
    use super::{CampaignReport, ChaosConfig, ScheduleReport};
    use crate::{enumerate_schedules, Mode, Schedule};
    use apex_apps::{gaussian, harris, unsharp, Application};
    use apex_core::{
        dse_evaluate_suite, run_checkpointed, specialized_variant, DseOptions, JobReport,
        PeVariant, SubgraphSelection, SweepJob, SweepJobResult, SweepJournal, VariantCache,
    };
    use apex_fault::{failpoints, interrupt, ApexError, Provenance, ResourceBudget, Stage};
    use apex_merge::MergeOptions;
    use apex_mining::MinerConfig;
    use apex_serve::{client, proto, DseRunner, RunSummary, ServeConfig, Server};
    use apex_tech::TechModel;
    use std::collections::BTreeSet;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::path::Path;
    use std::time::Duration;

    pub(super) fn run(config: &ChaosConfig) -> Result<CampaignReport, ApexError> {
        let scratch = config.scratch.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("apex-chaos-{}", std::process::id()))
        });
        let schedules = enumerate_schedules(config.schedules, config.seed);
        let mut runs = Vec::with_capacity(schedules.len());
        for schedule in schedules {
            let dir = scratch.join(format!("s{:03}", schedule.id));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).map_err(|e| {
                ApexError::new(
                    Stage::Sweep,
                    format!("chaos scratch {}: {e}", dir.display()),
                )
            })?;
            failpoints::disarm_all();
            interrupt::reset();
            let violations = match schedule.mode {
                Mode::InProcess => run_in_process(&schedule, &dir),
                Mode::Daemon => run_daemon(&schedule, &dir),
            };
            failpoints::disarm_all();
            interrupt::reset();
            if violations.is_empty() {
                let _ = std::fs::remove_dir_all(&dir);
            }
            runs.push(ScheduleReport {
                schedule,
                violations,
            });
        }
        // keep the root only if some schedule left evidence behind
        let _ = std::fs::remove_dir(&scratch);
        Ok(CampaignReport {
            seed: config.seed,
            runs,
        })
    }

    fn panic_text(p: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = p.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = p.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_owned()
        }
    }

    fn arm(schedule: &Schedule) {
        for f in &schedule.faults {
            failpoints::arm_after(&f.site, f.nth);
        }
    }

    // -----------------------------------------------------------------
    // in-process mode
    // -----------------------------------------------------------------

    /// One job's observable conclusion.
    struct JobOutcome {
        payload: String,
        /// Whether the report documents a concession (degradation
        /// summary or a non-`Completed` provenance) — flagged outcomes
        /// are allowed to diverge from the reference.
        flagged: bool,
    }

    struct RunOutput {
        jobs: Vec<JobOutcome>,
        variant: Option<PeVariant>,
        interrupted: bool,
    }

    fn miner_config(budget: Option<u64>) -> MinerConfig {
        MinerConfig {
            resource: budget.map_or(ResourceBudget::unlimited(), ResourceBudget::with_max_bytes),
            ..MinerConfig::default()
        }
    }

    fn merge_options(budget: Option<u64>) -> MergeOptions {
        MergeOptions {
            resource: budget.map_or(ResourceBudget::unlimited(), ResourceBudget::with_max_bytes),
            ..MergeOptions::default()
        }
    }

    /// The in-process workload: specialize a PE for the benchmark trio,
    /// optionally exercise the variant cache (store + evict under the
    /// armed faults), then evaluate each application as one job of a
    /// checkpointed sweep.
    fn run_workload(
        journal: &SweepJournal,
        resume: bool,
        budget: Option<u64>,
        cache: Option<&VariantCache>,
        cache_key: u64,
    ) -> Result<RunOutput, ApexError> {
        let apps = [gaussian(), harris(), unsharp()];
        let refs: Vec<&Application> = apps.iter().collect();
        let tech = TechModel::default();
        let variant = specialized_variant(
            "pe_chaos",
            &refs,
            &refs,
            &miner_config(budget),
            &SubgraphSelection::default(),
            &merge_options(budget),
            &tech,
            &BTreeSet::new(),
        );
        if let (Some(cache), Ok(v)) = (cache, &variant) {
            cache.store(cache_key, v);
            cache.store(cache_key.wrapping_add(1), v);
            let total = cache.total_bytes();
            if total > 0 {
                cache.evict_to_cap(total / 2);
            }
        }
        // a watchdog deadline so the injected hang (`sweep::job_timeout`)
        // is cancelled instead of wedging the campaign
        let opts = DseOptions {
            jobs: 2,
            job_deadline: Some(Duration::from_secs(5)),
            ..DseOptions::default()
        };
        let jobs: Vec<SweepJob> = apps
            .iter()
            .enumerate()
            .map(|(i, a)| SweepJob {
                key: 0xC4A0_5000 + i as u64,
                label: a.info.name.clone(),
            })
            .collect();
        let run = run_checkpointed(journal, &jobs, resume, None, |i| {
            let outcome = dse_evaluate_suite(&variant, &[&apps[i]], &tech, &opts)
                .pop()
                .ok_or_else(|| ApexError::new(Stage::Sweep, "suite returned no outcome"))?;
            let summary = outcome.degradation_summary();
            let payload = match &outcome.result {
                Ok(e) => format!(
                    "{} area={:.3} energy={:.4} cycles={} deg={}",
                    apps[i].info.name,
                    e.area.total(),
                    e.energy_per_cycle.total(),
                    e.runtime_cycles,
                    summary
                ),
                Err(e) => format!("{} failed: {e} deg={}", apps[i].info.name, summary),
            };
            Ok(JobReport {
                payload,
                provenance: Provenance::Completed,
                degradations: summary,
            })
        })?;
        let outcomes = run
            .results
            .into_iter()
            .map(|r| match r {
                SweepJobResult::Done { report, .. } => JobOutcome {
                    flagged: report.degradations != "-"
                        || report.provenance != Provenance::Completed,
                    payload: report.payload,
                },
                SweepJobResult::NotRun => JobOutcome {
                    payload: "<not-run>".to_owned(),
                    flagged: true,
                },
            })
            .collect();
        Ok(RunOutput {
            jobs: outcomes,
            variant: variant.ok(),
            interrupted: run.interrupted,
        })
    }

    fn run_in_process(schedule: &Schedule, dir: &Path) -> Vec<String> {
        let mut violations = Vec::new();
        let ref_path = dir.join("ref.jsonl");
        let reference = match run_workload(
            &SweepJournal::at(&ref_path),
            false,
            schedule.mem_budget,
            None,
            0,
        ) {
            Ok(r) => r,
            Err(e) => {
                violations.push(format!("reference run failed: {e}"));
                return violations;
            }
        };

        // pre-seed the fault journal with the first reference record and
        // run the faulted pass through the resume path, so the replay
        // sites (`sweep::journal_replay`) are reachable under fault
        let fault_path = dir.join("fault.jsonl");
        if let Ok(text) = std::fs::read_to_string(&ref_path) {
            if let Some(first) = text.lines().next() {
                let _ = std::fs::write(&fault_path, format!("{first}\n"));
            }
        }
        let cache = VariantCache::at(dir.join("cache"));
        arm(schedule);
        let faulted = catch_unwind(AssertUnwindSafe(|| {
            run_workload(
                &SweepJournal::at(&fault_path),
                true,
                schedule.mem_budget,
                Some(&cache),
                0x10 + schedule.id as u64,
            )
        }));
        failpoints::disarm_all();
        interrupt::reset();
        let faulted = match faulted {
            Ok(Ok(r)) => Some(r),
            Ok(Err(e)) => {
                violations.push(format!(
                    "faulted run returned a hard error instead of a reported outcome: {e}"
                ));
                None
            }
            Err(p) => {
                violations.push(format!(
                    "panic escaped the faulted run: {}",
                    panic_text(p.as_ref())
                ));
                None
            }
        };

        // invariant 2: only documented divergence in the faulted run
        if let Some(f) = &faulted {
            for (i, job) in f.jobs.iter().enumerate() {
                let reference_payload = reference.jobs.get(i).map(|j| j.payload.as_str());
                if !job.flagged && Some(job.payload.as_str()) != reference_payload {
                    violations.push(format!(
                        "job {i} diverged from the reference without a documented \
                         degradation: {:?}",
                        job.payload
                    ));
                }
            }
        }

        // invariant 3: disarmed resume runs are byte-identical, complete,
        // and match the reference wherever the fault left no conclusion
        let resume1 = run_workload(
            &SweepJournal::at(&fault_path),
            true,
            schedule.mem_budget,
            None,
            0,
        );
        let resume2 = run_workload(
            &SweepJournal::at(&fault_path),
            true,
            schedule.mem_budget,
            None,
            0,
        );
        match (resume1, resume2) {
            (Ok(r1), Ok(r2)) => {
                let p1: Vec<&String> = r1.jobs.iter().map(|j| &j.payload).collect();
                let p2: Vec<&String> = r2.jobs.iter().map(|j| &j.payload).collect();
                if p1 != p2 {
                    violations.push("two disarmed --resume runs differ (resume is not byte-deterministic)".to_owned());
                }
                if r1.interrupted {
                    violations
                        .push("disarmed --resume run still reports an interrupt".to_owned());
                }
                for (i, job) in r1.jobs.iter().enumerate() {
                    let reference_payload = reference.jobs.get(i).map(|j| j.payload.as_str());
                    if !job.flagged && Some(job.payload.as_str()) != reference_payload {
                        violations.push(format!(
                            "resumed job {i} diverged from the uninterrupted reference \
                             without a documented degradation: {:?}",
                            job.payload
                        ));
                    }
                }
            }
            (Err(e), _) | (_, Err(e)) => {
                violations.push(format!("disarmed --resume run failed: {e}"));
            }
        }

        // invariant 4: the faulted journal replays torn- and corrupt-free
        let replay = SweepJournal::at(&fault_path).replay();
        if replay.dropped_torn + replay.dropped_corrupt > 0 {
            violations.push(format!(
                "faulted journal replay dropped {} torn / {} corrupt record(s) \
                 (the writer must roll back failed appends)",
                replay.dropped_torn, replay.dropped_corrupt
            ));
        }

        // invariant 5: the variant cache holds no non-quarantined
        // corruption and no tmp residue
        check_cache(dir, &mut violations);

        // invariant 6: the surviving variant passes the static verifier
        if let Some(v) = faulted.as_ref().and_then(|f| f.variant.as_ref()) {
            let mut found = apex_verify::verify_datapath_with(&v.spec.datapath, &v.sources, 16);
            found.extend(apex_verify::verify_ruleset(
                &v.spec.datapath,
                &v.rules.rules,
                8,
            ));
            for x in found {
                violations.push(format!("verify on the surviving variant: {x}"));
            }
        }
        violations
    }

    fn check_cache(dir: &Path, violations: &mut Vec<String>) {
        let cache_dir = dir.join("cache");
        let Ok(read) = std::fs::read_dir(&cache_dir) else {
            return; // cache never materialized: nothing to corrupt
        };
        let cache = VariantCache::at(&cache_dir);
        for entry in read.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".corrupt") {
                continue; // quarantine is the documented shape for damage
            }
            let key = name
                .strip_suffix(".var")
                .and_then(|hex| u64::from_str_radix(hex, 16).ok());
            match key {
                Some(key) if cache.load(key).is_some() => {}
                Some(_) => violations.push(format!(
                    "variant cache serves a non-quarantined corrupt entry: {name}"
                )),
                None => violations.push(format!(
                    "variant cache holds unexpected residue: {name}"
                )),
            }
        }
    }

    // -----------------------------------------------------------------
    // daemon mode
    // -----------------------------------------------------------------

    /// One submission's observable conclusion over the wire.
    struct WireOutcome {
        payload: String,
        flagged: bool,
        concluded: bool,
    }

    fn wire_outcome(result: Result<proto::Fields, ApexError>) -> WireOutcome {
        match result {
            Ok(fields) => {
                let kind = fields
                    .get("ok")
                    .or_else(|| fields.get("err"))
                    .map(String::as_str)
                    .unwrap_or("")
                    .to_owned();
                let payload = fields.get("payload").cloned().unwrap_or_default();
                let provenance = fields
                    .get("provenance")
                    .map(String::as_str)
                    .unwrap_or("ok")
                    .to_owned();
                let degradations = fields
                    .get("degradations")
                    .map(String::as_str)
                    .unwrap_or("-")
                    .to_owned();
                WireOutcome {
                    flagged: kind != "result" || provenance != "ok" || degradations != "-",
                    payload,
                    concluded: true,
                }
            }
            Err(e) => WireOutcome {
                payload: format!("<error: {e}>"),
                flagged: true,
                concluded: false,
            },
        }
    }

    fn daemon_config() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_limit: 8,
            idle_timeout: Duration::from_millis(750),
            retry_after: Duration::from_millis(50),
            default_deadline: Duration::from_secs(60),
            resume: false,
            ..ServeConfig::default()
        }
    }

    /// Stops a daemon: polite drain first, then the interrupt flag (a
    /// schedule arming `serve::accept_error` may be refusing every
    /// connection, drain op included), then join.
    fn stop_server(
        addr: &str,
        handle: std::thread::JoinHandle<RunSummary>,
    ) -> Result<RunSummary, String> {
        let mut fields = proto::Fields::new();
        fields.insert("op".to_owned(), "drain".to_owned());
        let _ = client::request(addr, &proto::encode(&fields), Duration::from_secs(2));
        interrupt::trigger();
        let joined = handle.join().map_err(|p| panic_text(p.as_ref()));
        interrupt::reset();
        joined
    }

    /// One daemon pass: bind on the given journal, submit every graph,
    /// stop, and report the per-graph outcomes (client panics and server
    /// panics become violations in the caller).
    #[allow(clippy::type_complexity)]
    fn daemon_pass(
        journal_path: &Path,
        resume: bool,
        graphs: &[String],
        timeout: Duration,
    ) -> Result<(Vec<WireOutcome>, Result<RunSummary, String>), ApexError> {
        let config = ServeConfig {
            resume,
            ..daemon_config()
        };
        let server = Server::bind(config, SweepJournal::at(journal_path), DseRunner)?;
        let addr = server.local_addr()?.to_string();
        let handle = std::thread::spawn(move || server.run());
        let client_phase = catch_unwind(AssertUnwindSafe(|| {
            graphs
                .iter()
                .map(|g| wire_outcome(client::submit_and_wait(&addr, "chaos", g, None, timeout)))
                .collect::<Vec<_>>()
        }));
        let summary = stop_server(&addr, handle);
        match client_phase {
            Ok(outcomes) => Ok((outcomes, summary)),
            Err(p) => Err(ApexError::new(
                Stage::Cli,
                format!("panic escaped the submit client: {}", panic_text(p.as_ref())),
            )),
        }
    }

    fn run_daemon(schedule: &Schedule, dir: &Path) -> Vec<String> {
        let mut violations = Vec::new();
        let graphs: Vec<String> = [gaussian(), unsharp()]
            .iter()
            .map(|a| apex_ir::to_text(&a.graph))
            .collect();

        // uninterrupted reference
        let ref_path = dir.join("ref.jsonl");
        let reference =
            match daemon_pass(&ref_path, false, &graphs, Duration::from_secs(120)) {
                Ok((outcomes, summary)) => {
                    if let Err(p) = summary {
                        violations.push(format!("reference daemon panicked: {p}"));
                        return violations;
                    }
                    if let Some(bad) = outcomes.iter().find(|o| !o.concluded || o.flagged) {
                        violations.push(format!(
                            "reference daemon run did not conclude cleanly: {}",
                            bad.payload
                        ));
                        return violations;
                    }
                    outcomes
                }
                Err(e) => {
                    violations.push(format!("reference daemon run failed: {e}"));
                    return violations;
                }
            };

        // faulted pass: submissions may fail or degrade, but only in
        // documented shapes, and the server must neither panic nor hang
        let fault_path = dir.join("fault.jsonl");
        arm(schedule);
        let faulted = daemon_pass(&fault_path, false, &graphs, Duration::from_secs(60));
        failpoints::disarm_all();
        interrupt::reset();
        match faulted {
            Ok((_outcomes, summary)) => {
                if let Err(p) = summary {
                    violations.push(format!("daemon panicked under fault: {p}"));
                }
                // client-side errors under fault are documented outcomes
            }
            Err(e) => violations.push(e.to_string()),
        }

        // two disarmed resume restarts over the faulted journal
        let mut rounds: Vec<Vec<WireOutcome>> = Vec::new();
        for round in 0..2 {
            match daemon_pass(&fault_path, true, &graphs, Duration::from_secs(120)) {
                Ok((outcomes, summary)) => {
                    if let Err(p) = summary {
                        violations.push(format!("resume daemon (round {round}) panicked: {p}"));
                    }
                    rounds.push(outcomes);
                }
                Err(e) => {
                    violations.push(format!("resume daemon round {round} failed: {e}"));
                }
            }
        }
        if let [r1, r2] = rounds.as_slice() {
            let p1: Vec<&String> = r1.iter().map(|o| &o.payload).collect();
            let p2: Vec<&String> = r2.iter().map(|o| &o.payload).collect();
            if p1 != p2 {
                violations.push(
                    "two disarmed --resume daemon restarts differ (resume is not \
                     byte-deterministic)"
                        .to_owned(),
                );
            }
            for (i, o) in r1.iter().enumerate() {
                if !o.concluded {
                    violations.push(format!(
                        "graph {i} failed to conclude on a disarmed resume restart: {}",
                        o.payload
                    ));
                } else if !o.flagged && Some(&o.payload) != reference.get(i).map(|r| &r.payload)
                {
                    violations.push(format!(
                        "resumed graph {i} diverged from the uninterrupted reference \
                         without a documented degradation"
                    ));
                }
            }
        }

        // the faulted journal replays torn- and corrupt-free
        let replay = SweepJournal::at(&fault_path).replay();
        if replay.dropped_torn + replay.dropped_corrupt > 0 {
            violations.push(format!(
                "faulted daemon journal dropped {} torn / {} corrupt record(s)",
                replay.dropped_torn, replay.dropped_corrupt
            ));
        }
        violations
    }
}
