//! Shared dataflow-graph construction helpers.
//!
//! These mirror the computational idioms the Halide compiler produces when
//! lowering image-processing and ML kernels to CoreIR: constant-weight
//! multiply trees, balanced adder reductions, clamps, and averaging by
//! power-of-two shifts.

use apex_ir::{Graph, NodeId, Op};

/// Balanced binary adder tree over `terms`.
///
/// # Panics
/// Panics if `terms` is empty.
pub fn adder_tree(g: &mut Graph, terms: &[NodeId]) -> NodeId {
    assert!(!terms.is_empty(), "adder tree needs at least one term");
    let mut level: Vec<NodeId> = terms.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            match pair {
                [a, b] => next.push(g.add(Op::Add, &[*a, *b])),
                [a] => next.push(*a),
                _ => unreachable!(),
            }
        }
        level = next;
    }
    level[0]
}

/// Constant-weight dot product: `sum_i inputs[i] * weights[i]`.
///
/// Weights become [`Op::Const`] nodes, matching the convolution-with-fixed-
/// kernel structure of Fig. 3 in the paper.
///
/// # Panics
/// Panics if lengths differ or are zero.
pub fn dot_const(g: &mut Graph, inputs: &[NodeId], weights: &[u16]) -> NodeId {
    assert_eq!(inputs.len(), weights.len(), "dot product length mismatch");
    let prods: Vec<NodeId> = inputs
        .iter()
        .zip(weights)
        .map(|(&x, &w)| {
            let c = g.constant(w);
            g.add(Op::Mul, &[x, c])
        })
        .collect();
    adder_tree(g, &prods)
}

/// Normalizes a weighted sum by a power of two: `x >> shift`.
pub fn normalize(g: &mut Graph, x: NodeId, shift: u16) -> NodeId {
    let c = g.constant(shift);
    g.add(Op::Lshr, &[x, c])
}

/// Clamps `x` into `[lo, hi]` (signed) using constant registers.
pub fn clamp(g: &mut Graph, x: NodeId, lo: u16, hi: u16) -> NodeId {
    let lo_c = g.constant(lo);
    let hi_c = g.constant(hi);
    let lower = g.add(Op::Smax, &[x, lo_c]);
    g.add(Op::Smin, &[lower, hi_c])
}

/// Rectified linear unit: `max(x, 0)` (signed).
pub fn relu(g: &mut Graph, x: NodeId) -> NodeId {
    let zero = g.constant(0);
    g.add(Op::Smax, &[x, zero])
}

/// ReLU6: `min(max(x, 0), 6 << frac_bits)` — the MobileNet activation.
pub fn relu6(g: &mut Graph, x: NodeId, frac_bits: u16) -> NodeId {
    clamp(g, x, 0, 6 << frac_bits)
}

/// Absolute difference `|a - b|`, the stereo/SAD idiom.
pub fn abs_diff(g: &mut Graph, a: NodeId, b: NodeId) -> NodeId {
    let d = g.add(Op::Sub, &[a, b]);
    g.add(Op::Abs, &[d])
}

/// Average of two values with rounding-free shift: `(a + b) >> 1`.
pub fn avg2(g: &mut Graph, a: NodeId, b: NodeId) -> NodeId {
    let s = g.add(Op::Add, &[a, b]);
    normalize(g, s, 1)
}

/// Average of four values: `(a + b + c + d) >> 2`.
pub fn avg4(g: &mut Graph, vals: [NodeId; 4]) -> NodeId {
    let s = adder_tree(g, &vals);
    normalize(g, s, 2)
}

/// Signed-minimum reduction tree.
///
/// # Panics
/// Panics if `terms` is empty.
pub fn min_tree(g: &mut Graph, terms: &[NodeId]) -> NodeId {
    reduce(g, terms, Op::Umin)
}

/// Signed-maximum reduction tree.
///
/// # Panics
/// Panics if `terms` is empty.
pub fn max_tree(g: &mut Graph, terms: &[NodeId]) -> NodeId {
    reduce(g, terms, Op::Umax)
}

fn reduce(g: &mut Graph, terms: &[NodeId], op: Op) -> NodeId {
    assert!(!terms.is_empty(), "reduction needs at least one term");
    let mut level = terms.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            match pair {
                [a, b] => next.push(g.add(op, &[*a, *b])),
                [a] => next.push(*a),
                _ => unreachable!(),
            }
        }
        level = next;
    }
    level[0]
}

/// 3×3 median approximation used by denoising stages: the median of the
/// min, max, and centre of the window's row medians (a standard shear-sort
/// style approximation that lowers to min/max networks).
pub fn median9_approx(g: &mut Graph, w: &[NodeId; 9]) -> NodeId {
    let row_med = |g: &mut Graph, a: NodeId, b: NodeId, c: NodeId| -> NodeId {
        // median(a,b,c) = max(min(a,b), min(max(a,b), c))
        let mn = g.add(Op::Umin, &[a, b]);
        let mx = g.add(Op::Umax, &[a, b]);
        let m2 = g.add(Op::Umin, &[mx, c]);
        g.add(Op::Umax, &[mn, m2])
    };
    let m0 = row_med(g, w[0], w[1], w[2]);
    let m1 = row_med(g, w[3], w[4], w[5]);
    let m2 = row_med(g, w[6], w[7], w[8]);
    row_med(g, m0, m1, m2)
}

/// Piecewise-linear tone-curve segment: `if x > knee { base + ((x - knee) * slope) >> shift } else { x }`.
///
/// This is how the camera pipeline's colour curve lowers: comparisons
/// selecting between linear segments.
pub fn tone_segment(
    g: &mut Graph,
    x: NodeId,
    knee: u16,
    base: u16,
    slope: u16,
    shift: u16,
) -> NodeId {
    let knee_c = g.constant(knee);
    let above = g.add(Op::Sgt, &[x, knee_c]);
    let delta = g.add(Op::Sub, &[x, knee_c]);
    let slope_c = g.constant(slope);
    let scaled = g.add(Op::Mul, &[delta, slope_c]);
    let shifted = normalize(g, scaled, shift);
    let base_c = g.constant(base);
    let seg = g.add(Op::Add, &[shifted, base_c]);
    g.add(Op::Mux, &[x, seg, above])
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_ir::{evaluate, Value};

    fn eval1(g: &Graph, inputs: &[u16]) -> u16 {
        let vals: Vec<Value> = inputs.iter().map(|&w| Value::Word(w)).collect();
        evaluate(g, &vals)[0].word()
    }

    #[test]
    fn adder_tree_sums() {
        let mut g = Graph::new("t");
        let ins: Vec<NodeId> = (0..5).map(|_| g.input()).collect();
        let s = adder_tree(&mut g, &ins);
        g.output(s);
        assert_eq!(eval1(&g, &[1, 2, 3, 4, 5]), 15);
    }

    #[test]
    fn dot_const_weighted_sum() {
        let mut g = Graph::new("t");
        let ins: Vec<NodeId> = (0..3).map(|_| g.input()).collect();
        let s = dot_const(&mut g, &ins, &[1, 2, 3]);
        g.output(s);
        assert_eq!(eval1(&g, &[10, 10, 10]), 60);
    }

    #[test]
    fn clamp_bounds() {
        let mut g = Graph::new("t");
        let x = g.input();
        let c = clamp(&mut g, x, 0, 255);
        g.output(c);
        assert_eq!(eval1(&g, &[300]), 255);
        assert_eq!(eval1(&g, &[(-7i16) as u16]), 0);
        assert_eq!(eval1(&g, &[42]), 42);
    }

    #[test]
    fn relu6_saturates() {
        let mut g = Graph::new("t");
        let x = g.input();
        let r = relu6(&mut g, x, 4); // Q
        g.output(r);
        assert_eq!(eval1(&g, &[200]), 96);
        assert_eq!(eval1(&g, &[(-3i16) as u16]), 0);
        assert_eq!(eval1(&g, &[50]), 50);
    }

    #[test]
    fn abs_diff_symmetry() {
        let mut g = Graph::new("t");
        let a = g.input();
        let b = g.input();
        let d = abs_diff(&mut g, a, b);
        g.output(d);
        assert_eq!(eval1(&g, &[10, 4]), 6);
        assert_eq!(eval1(&g, &[4, 10]), 6);
    }

    #[test]
    fn median9_of_constant_window_is_constant() {
        let mut g = Graph::new("t");
        let w: Vec<NodeId> = (0..9).map(|_| g.input()).collect();
        let m = median9_approx(&mut g, &w.clone().try_into().unwrap());
        g.output(m);
        assert_eq!(eval1(&g, &[7; 9]), 7);
    }

    #[test]
    fn median9_rejects_outlier() {
        let mut g = Graph::new("t");
        let w: Vec<NodeId> = (0..9).map(|_| g.input()).collect();
        let m = median9_approx(&mut g, &w.clone().try_into().unwrap());
        g.output(m);
        // one hot pixel in a flat window is removed
        assert_eq!(eval1(&g, &[5, 5, 5, 5, 900, 5, 5, 5, 5]), 5);
    }

    #[test]
    fn tone_segment_is_identity_below_knee() {
        let mut g = Graph::new("t");
        let x = g.input();
        let y = tone_segment(&mut g, x, 128, 128, 8, 4);
        g.output(y);
        assert_eq!(eval1(&g, &[100]), 100);
        // above the knee: 128 + ((200-128)*8)>>4 = 128 + 36
        assert_eq!(eval1(&g, &[200]), 164);
    }

    #[test]
    fn min_max_trees() {
        let mut g = Graph::new("t");
        let ins: Vec<NodeId> = (0..4).map(|_| g.input()).collect();
        let mn = min_tree(&mut g, &ins);
        let mx = max_tree(&mut g, &ins);
        g.output(mn);
        g.output(mx);
        let vals: Vec<Value> = [3u16, 9, 1, 5].iter().map(|&w| Value::Word(w)).collect();
        let out = evaluate(&g, &vals);
        assert_eq!(out[0].word(), 1);
        assert_eq!(out[1].word(), 9);
    }
}
