//! Image-level reference execution: slides a window-based application
//! across a whole image through the IR interpreter, producing the golden
//! output image. This is how the benchmark graphs connect back to actual
//! pixels — and how image-level invariants (impulse responses, flat-field
//! behaviour) get tested.

use crate::Application;
use apex_ir::{evaluate, Value};

/// A simple 16-bit grayscale image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<u16>,
}

impl Image {
    /// Creates a constant-valued image.
    pub fn filled(width: usize, height: usize, value: u16) -> Self {
        Image {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Builds an image from a function of (x, y).
    pub fn from_fn(width: usize, height: usize, f: impl Fn(usize, usize) -> u16) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Image {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel access with edge clamping (the usual boundary condition of
    /// the Halide benchmarks).
    pub fn at(&self, x: isize, y: isize) -> u16 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.data[y * self.width + x]
    }

    /// Sets a pixel.
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn set(&mut self, x: usize, y: usize, v: u16) {
        assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = v;
    }

    /// The raw pixel data, row-major.
    pub fn data(&self) -> &[u16] {
        &self.data
    }
}

/// Runs a 3×3-window application over an image.
///
/// Works for any application whose unrolled graph takes `unroll × 9` word
/// inputs and produces `k` word outputs per unrolled pixel (gaussian,
/// unsharp, laplacian: k = 1; camera: k = 3). Every unrolled copy is fed
/// the same window and the first copy's outputs are taken, so the result
/// is the per-pixel kernel applied at every position.
///
/// Returns one output image per kernel output.
///
/// # Panics
/// Panics if the application's input count is not a multiple of 9.
pub fn run_3x3(app: &Application, input: &Image) -> Vec<Image> {
    let n_inputs = app.graph.primary_inputs().len();
    assert_eq!(
        n_inputs % 9,
        0,
        "{} is not a 3x3-window application",
        app.info.name
    );
    let unroll = n_inputs / 9;
    let outs_total = app.graph.primary_outputs().len();
    let outs_per_pixel = outs_total / unroll;
    let mut outputs =
        vec![Image::filled(input.width(), input.height(), 0); outs_per_pixel];
    for y in 0..input.height() as isize {
        for x in 0..input.width() as isize {
            let mut window = Vec::with_capacity(9);
            for dy in -1..=1 {
                for dx in -1..=1 {
                    window.push(Value::Word(input.at(x + dx, y + dy)));
                }
            }
            let mut inputs = Vec::with_capacity(n_inputs);
            for _ in 0..unroll {
                inputs.extend_from_slice(&window);
            }
            let result = evaluate(&app.graph, &inputs);
            for (k, img) in outputs.iter_mut().enumerate() {
                img.set(x as usize, y as usize, result[k].word());
            }
        }
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{camera_pipeline, gaussian, laplacian_pyramid, unsharp};

    #[test]
    fn gaussian_impulse_response_is_the_kernel() {
        let app = gaussian();
        let mut img = Image::filled(9, 9, 0);
        img.set(4, 4, 160); // 160/16 = 10 per kernel unit
        let out = &run_3x3(&app, &img)[0];
        // 3x3 gaussian [1 2 1; 2 4 2; 1 2 1]/16 scaled by 160
        let expect = [
            (3, 3, 10),
            (4, 3, 20),
            (5, 3, 10),
            (3, 4, 20),
            (4, 4, 40),
            (5, 4, 20),
            (3, 5, 10),
            (4, 5, 20),
            (5, 5, 10),
        ];
        for (x, y, v) in expect {
            assert_eq!(out.at(x, y), v, "impulse response at ({x},{y})");
        }
        assert_eq!(out.at(0, 0), 0, "far field untouched");
    }

    #[test]
    fn gaussian_preserves_flat_fields_imagewide() {
        let app = gaussian();
        let img = Image::filled(12, 7, 77);
        let out = &run_3x3(&app, &img)[0];
        assert!(out.data().iter().all(|&v| v == 77));
    }

    #[test]
    fn unsharp_overshoots_on_a_step_edge() {
        let app = unsharp();
        let img = Image::from_fn(16, 8, |x, _| if x < 8 { 20 } else { 180 });
        let out = &run_3x3(&app, &img)[0];
        // bright side of the edge overshoots above 180, dark side dips
        let bright_edge = out.at(8, 4);
        let dark_edge = out.at(7, 4);
        assert!(bright_edge > 180, "overshoot: {bright_edge}");
        assert!(dark_edge < 20, "undershoot: {dark_edge}");
        // flat interior is untouched
        assert_eq!(out.at(1, 4), 20);
        assert_eq!(out.at(14, 4), 180);
    }

    #[test]
    fn laplacian_responds_only_at_edges() {
        let app = laplacian_pyramid();
        let img = Image::from_fn(16, 8, |x, _| if x < 8 { 50 } else { 90 });
        let out = &run_3x3(&app, &img)[0];
        assert_eq!(out.at(2, 3), 0, "flat region has zero laplacian");
        assert_ne!(out.at(8, 3), 0, "edge produces a band-pass response");
    }

    #[test]
    fn camera_produces_three_planes_in_range() {
        let app = camera_pipeline();
        let img = Image::from_fn(8, 6, |x, y| ((x * 37 + y * 11) % 200) as u16);
        let planes = run_3x3(&app, &img);
        assert_eq!(planes.len(), 3, "RGB output");
        for p in &planes {
            assert!(p.data().iter().all(|&v| v <= 255), "8-bit range");
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::gaussian;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn gaussian_output_stays_within_window_bounds(
            pixels in prop::collection::vec(0u16..256, 36)
        ) {
            // a normalized blur is a convex combination (up to truncation):
            // every output pixel lies within [min, max] of its 3x3 window
            let img = Image::from_fn(6, 6, |x, y| pixels[y * 6 + x]);
            let out = &run_3x3(&gaussian(), &img)[0];
            for y in 0..6isize {
                for x in 0..6isize {
                    let mut lo = u16::MAX;
                    let mut hi = 0u16;
                    for dy in -1..=1 {
                        for dx in -1..=1 {
                            let v = img.at(x + dx, y + dy);
                            lo = lo.min(v);
                            hi = hi.max(v);
                        }
                    }
                    let o = out.at(x, y);
                    prop_assert!(o >= lo.saturating_sub(1) && o <= hi,
                        "({x},{y}): {o} outside [{lo},{hi}]");
                }
            }
        }

        #[test]
        fn blur_reduces_total_variation(pixels in prop::collection::vec(0u16..256, 48)) {
            let img = Image::from_fn(8, 6, |x, y| pixels[y * 8 + x]);
            let out = &run_3x3(&gaussian(), &img)[0];
            let tv = |im: &Image| -> u64 {
                let mut t = 0u64;
                for y in 0..6isize {
                    for x in 0..7isize {
                        t += u64::from(im.at(x, y).abs_diff(im.at(x + 1, y)));
                    }
                }
                t
            };
            // smoothing never increases horizontal total variation by more
            // than the truncation slack (1 LSB per pixel pair)
            prop_assert!(tv(out) <= tv(&img) + 42);
        }
    }
}
