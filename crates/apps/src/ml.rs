//! Machine-learning benchmark applications (Table 1, domain "ML").
//!
//! The paper evaluates one ResNet layer and one MobileNet layer. Halide
//! lowers these to heavily unrolled fixed-point multiply-accumulate trees
//! with ReLU-family activations and requantization shifts; we build the
//! same structure directly.

use crate::kernels::{adder_tree, normalize, relu, relu6};
use crate::{AppInfo, Application, Domain};
use apex_ir::{Graph, NodeId, Op};

/// Deterministic small weights for synthetic layers (the values do not
/// affect DSE structure, only golden-model outputs).
fn weight(i: usize) -> u16 {
    // small signed-looking weights in [1, 9]
    ((i * 7 + 3) % 9 + 1) as u16
}

/// One output element of a 3×3 convolution over `c_in` input channels:
/// MAC tree + bias + requantization + ReLU.
fn conv_output(g: &mut Graph, taps: &[NodeId], bias: u16) -> NodeId {
    let prods: Vec<NodeId> = taps
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let w = g.constant(weight(i));
            g.add(Op::Mul, &[x, w])
        })
        .collect();
    let acc = adder_tree(g, &prods);
    let b = g.constant(bias);
    let biased = g.add(Op::Add, &[acc, b]);
    let quant = normalize(g, biased, 4);
    relu(g, quant)
}

/// ResNet residual-block layer slice: 3×3 convolution over two input
/// channels producing three output elements, plus the residual add.
pub fn resnet_layer() -> Application {
    let mut g = Graph::new("resnet");
    const C_IN: usize = 2;
    const OUTPUTS: usize = 3;
    for _ in 0..OUTPUTS {
        // 3×3 window per input channel
        let taps: Vec<NodeId> = (0..9 * C_IN).map(|_| g.input()).collect();
        let conv = conv_output(&mut g, &taps, 8);
        // residual connection
        let skip = g.input();
        let sum = g.add(Op::Add, &[conv, skip]);
        let out = relu(&mut g, sum);
        g.output(out);
    }
    Application::new(
        AppInfo {
            name: "resnet".into(),
            domain: Domain::MachineLearning,
            description: "Residual neural network layer".into(),
            mem_tiles: 24,
            io_tiles: 11,
            unroll: OUTPUTS,
            output_pixels: 56 * 56 * 64,
        },
        g,
    )
}

/// MobileNet layer slice: 3×3 depthwise convolution on two channels
/// followed by a 1×1 pointwise combination, both with ReLU6.
pub fn mobilenet_layer() -> Application {
    let mut g = Graph::new("mobilenet");
    const PIXELS: usize = 2;
    for _ in 0..PIXELS {
        let mut dw_outs = Vec::new();
        for ch in 0..2 {
            let taps: Vec<NodeId> = (0..9).map(|_| g.input()).collect();
            let prods: Vec<NodeId> = taps
                .iter()
                .enumerate()
                .map(|(i, &x)| {
                    let w = g.constant(weight(i + ch * 9));
                    g.add(Op::Mul, &[x, w])
                })
                .collect();
            let acc = adder_tree(&mut g, &prods);
            let quant = normalize(&mut g, acc, 4);
            dw_outs.push(relu6(&mut g, quant, 4));
        }
        // pointwise 1×1 across the two depthwise outputs
        let w0 = g.constant(5);
        let w1 = g.constant(3);
        let p0 = g.add(Op::Mul, &[dw_outs[0], w0]);
        let p1 = g.add(Op::Mul, &[dw_outs[1], w1]);
        let acc = g.add(Op::Add, &[p0, p1]);
        let quant = normalize(&mut g, acc, 3);
        let out = relu6(&mut g, quant, 4);
        g.output(out);
    }
    Application::new(
        AppInfo {
            name: "mobilenet".into(),
            domain: Domain::MachineLearning,
            description: "Neural network layer for low-power devices".into(),
            mem_tiles: 52,
            io_tiles: 17,
            unroll: PIXELS,
            output_pixels: 112 * 112 * 32,
        },
        g,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_ir::{evaluate, OpKind, Value};

    #[test]
    fn resnet_zero_input_gives_bias_only() {
        let app = resnet_layer();
        let n = app.graph.primary_inputs().len();
        let out = evaluate(&app.graph, &vec![Value::Word(0); n]);
        // bias 8 >> 4 = 0, skip 0 → relu(0) = 0
        for v in out {
            assert_eq!(v.word(), 0);
        }
    }

    #[test]
    fn resnet_residual_passes_through() {
        let app = resnet_layer();
        let pis = app.graph.primary_inputs();
        let mut inputs = vec![Value::Word(0); pis.len()];
        // skip inputs are the last input of each group of 19
        // (9*2 conv taps + 1 skip); with zero conv taps the output is the
        // skip value itself.
        for chunk_end in (0..3).map(|i| (i + 1) * 19 - 1) {
            inputs[chunk_end] = Value::Word(42);
        }
        let out = evaluate(&app.graph, &inputs);
        for v in out {
            assert_eq!(v.word(), 42);
        }
    }

    #[test]
    fn ml_apps_are_mac_dominated() {
        for app in [resnet_layer(), mobilenet_layer()] {
            let h = app.graph.op_histogram();
            let muls = h.get(&OpKind::Mul).copied().unwrap_or(0);
            let adds = h.get(&OpKind::Add).copied().unwrap_or(0);
            let total = app.graph.compute_op_count();
            assert!(
                muls + adds >= total / 2,
                "{}: ML layers should be MAC-dominated ({muls}+{adds} of {total})",
                app.info.name
            );
        }
    }

    #[test]
    fn mobilenet_saturates_at_relu6() {
        let app = mobilenet_layer();
        let n = app.graph.primary_inputs().len();
        let out = evaluate(&app.graph, &vec![Value::Word(255); n]);
        for v in out {
            assert_eq!(v.word(), 6 << 4, "relu6 ceiling in Q4");
        }
    }

    #[test]
    fn ml_graphs_validate() {
        for app in [resnet_layer(), mobilenet_layer()] {
            assert!(app.graph.try_validate().is_ok());
            assert!(app.graph.primary_outputs().len() >= 2);
        }
    }
}
