//! Image-processing applications *not* used during PE IP's application
//! analysis (Section 5.2): Laplacian pyramid, stereo disparity, and FAST
//! corner detection. These demonstrate that APEX-generated PEs specialize
//! to a *domain* rather than to individual applications (Fig. 13).

use crate::image::gaussian_pixel_kernel;
use crate::kernels::{abs_diff, adder_tree, clamp};
use crate::{AppInfo, Application, Domain};
use apex_ir::{Graph, NodeId, Op};

fn window(g: &mut Graph, n: usize) -> Vec<NodeId> {
    (0..n).map(|_| g.input()).collect()
}

/// One Laplacian-pyramid level element: `L = x - blur(x)` with clamping
/// into the representable band.
fn laplacian_pixel(g: &mut Graph, w: &[NodeId]) -> NodeId {
    let blur = gaussian_pixel_kernel(g, w);
    let lap = g.add(Op::Sub, &[w[4], blur]);
    clamp(g, lap, (-128i16) as u16, 127)
}

/// Laplacian pyramid level (unseen app 1).
pub fn laplacian_pyramid() -> Application {
    let mut g = Graph::new("laplacian");
    for _ in 0..6 {
        let w = window(&mut g, 9);
        let l = laplacian_pixel(&mut g, &w);
        g.output(l);
    }
    Application::new(
        AppInfo {
            name: "laplacian".into(),
            domain: Domain::ImageProcessing,
            description: "Linear invertible pyramid image representation".into(),
            mem_tiles: 20,
            io_tiles: 24,
            unroll: 6,
            output_pixels: 1920 * 1080,
        },
        g,
    )
}

/// One stereo-disparity pixel: SAD over a 3×3 window for four candidate
/// disparities, then an argmin network.
fn stereo_pixel(g: &mut Graph, left: &[NodeId], rights: &[&[NodeId]]) -> NodeId {
    let mut best_cost: Option<NodeId> = None;
    let mut best_disp: Option<NodeId> = None;
    for (d, right) in rights.iter().enumerate() {
        let diffs: Vec<NodeId> = left
            .iter()
            .zip(right.iter())
            .map(|(&l, &r)| abs_diff(g, l, r))
            .collect();
        let sad = adder_tree(g, &diffs);
        let disp = g.constant(d as u16);
        match (best_cost, best_disp) {
            (None, None) => {
                best_cost = Some(sad);
                best_disp = Some(disp);
            }
            (Some(bc), Some(bd)) => {
                let better = g.add(Op::Ult, &[sad, bc]);
                // the running cost only feeds the next comparison; on the
                // last disparity the select would be dead, so skip it
                if d + 1 < rights.len() {
                    best_cost = Some(g.add(Op::Mux, &[bc, sad, better]));
                }
                best_disp = Some(g.add(Op::Mux, &[bd, disp, better]));
            }
            _ => unreachable!(),
        }
    }
    // the caller always passes at least one disparity window; degrade to a
    // constant-zero disparity instead of panicking if none were given
    match best_disp {
        Some(d) => d,
        None => g.constant(0),
    }
}

/// Stereo depth-map extraction (unseen app 2).
pub fn stereo() -> Application {
    let mut g = Graph::new("stereo");
    const DISPARITIES: usize = 4;
    for _ in 0..2 {
        let left = window(&mut g, 9);
        let rights: Vec<Vec<NodeId>> = (0..DISPARITIES).map(|_| window(&mut g, 9)).collect();
        let right_refs: Vec<&[NodeId]> = rights.iter().map(Vec::as_slice).collect();
        let d = stereo_pixel(&mut g, &left, &right_refs);
        g.output(d);
    }
    Application::new(
        AppInfo {
            name: "stereo".into(),
            domain: Domain::ImageProcessing,
            description: "Transforms left/right image pair into a depth map".into(),
            mem_tiles: 18,
            io_tiles: 12,
            unroll: 2,
            output_pixels: 1920 * 1080,
        },
        g,
    )
}

/// One FAST-corner pixel: compare 8 ring pixels against centre ± threshold
/// and detect a contiguous bright or dark arc of length 4 with bit logic.
fn fast_pixel(g: &mut Graph, center: NodeId, ring: &[NodeId]) -> NodeId {
    let t = g.constant(16);
    let hi = g.add(Op::Add, &[center, t]);
    let lo = g.add(Op::Sub, &[center, t]);
    let bright: Vec<NodeId> = ring.iter().map(|&p| g.add(Op::Sgt, &[p, hi])).collect();
    let dark: Vec<NodeId> = ring.iter().map(|&p| g.add(Op::Slt, &[p, lo])).collect();
    let arc_any = |g: &mut Graph, bits: &[NodeId]| -> NodeId {
        let n = bits.len();
        let mut arcs = Vec::new();
        for s in 0..n {
            let a = g.add(Op::BitAnd, &[bits[s], bits[(s + 1) % n]]);
            let b = g.add(Op::BitAnd, &[bits[(s + 2) % n], bits[(s + 3) % n]]);
            arcs.push(g.add(Op::BitAnd, &[a, b]));
        }
        let mut acc = arcs[0];
        for &x in &arcs[1..] {
            acc = g.add(Op::BitOr, &[acc, x]);
        }
        acc
    };
    let b_arc = arc_any(g, &bright);
    let d_arc = arc_any(g, &dark);
    let corner = g.add(Op::BitOr, &[b_arc, d_arc]);
    let one = g.constant(1);
    let zero = g.constant(0);
    g.add(Op::Mux, &[zero, one, corner])
}

/// FAST corner detection (unseen app 3).
pub fn fast_corner() -> Application {
    let mut g = Graph::new("fast");
    for _ in 0..2 {
        let center = g.input();
        let ring = window(&mut g, 8);
        let c = fast_pixel(&mut g, center, &ring);
        g.output(c);
    }
    Application::new(
        AppInfo {
            name: "fast".into(),
            domain: Domain::ImageProcessing,
            description: "Identifies corners using the FAST ring test".into(),
            mem_tiles: 12,
            io_tiles: 8,
            unroll: 2,
            output_pixels: 1920 * 1080,
        },
        g,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_ir::{evaluate, Value};

    #[test]
    fn laplacian_of_constant_image_is_zero() {
        let app = laplacian_pyramid();
        let n = app.graph.primary_inputs().len();
        let out = evaluate(&app.graph, &vec![Value::Word(55); n]);
        for v in out {
            assert_eq!(v.word(), 0);
        }
    }

    #[test]
    fn stereo_identical_images_pick_disparity_zero() {
        let app = stereo();
        let pis = app.graph.primary_inputs();
        // per pixel: 9 left taps then 4×9 right taps
        let mut inputs = Vec::with_capacity(pis.len());
        for _pixel in 0..2 {
            let left: Vec<u16> = (0..9).map(|i| 40 + i * 3).collect();
            inputs.extend(left.iter().map(|&v| Value::Word(v)));
            for d in 0..4u16 {
                // disparity 0 matches exactly; others are offset
                inputs.extend(left.iter().map(|&v| Value::Word(v + d * 11)));
            }
        }
        let out = evaluate(&app.graph, &inputs);
        for v in out {
            assert_eq!(v.word(), 0, "exact match is at disparity 0");
        }
    }

    #[test]
    fn fast_flags_bright_ring() {
        let app = fast_corner();
        let pis = app.graph.primary_inputs();
        // centre dark, entire ring bright → contiguous arc exists
        let mut inputs = Vec::with_capacity(pis.len());
        for _pixel in 0..2 {
            inputs.push(Value::Word(10)); // centre
            inputs.extend(std::iter::repeat(Value::Word(200)).take(8));
        }
        let out = evaluate(&app.graph, &inputs);
        for v in out {
            assert_eq!(v.word(), 1);
        }
    }

    #[test]
    fn fast_rejects_flat_patch() {
        let app = fast_corner();
        let n = app.graph.primary_inputs().len();
        let out = evaluate(&app.graph, &vec![Value::Word(90); n]);
        for v in out {
            assert_eq!(v.word(), 0);
        }
    }

    #[test]
    fn unseen_graphs_validate() {
        for app in [laplacian_pyramid(), stereo(), fast_corner()] {
            assert!(app.graph.try_validate().is_ok(), "{}", app.info.name);
        }
    }
}
