//! # apex-apps — application benchmark suite
//!
//! This crate is our substitute for the Halide applications and the
//! Halide-to-CoreIR compiler in the APEX paper's flow (DESIGN.md §3): each
//! benchmark of Table 1 is lowered by hand into an [`apex_ir::Graph`] with
//! the same operation mix, window structure, and unrolling the paper
//! describes, plus the three "unseen" applications of Section 5.2 used to
//! show domain (rather than application) specialization.
//!
//! # Examples
//!
//! ```
//! use apex_apps::{analyzed_apps, Domain};
//!
//! let apps = analyzed_apps();
//! assert_eq!(apps.len(), 6);
//! assert_eq!(apps.iter().filter(|a| a.info.domain == Domain::ImageProcessing).count(), 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod image;
mod kernels;
mod ml;
mod reference;
mod unseen;

pub use image::{camera_pipeline, gaussian, harris, unsharp};
pub use reference::{run_3x3, Image};
pub use ml::{mobilenet_layer, resnet_layer};
pub use unseen::{fast_corner, laplacian_pyramid, stereo};

/// Re-exported graph-construction helpers, useful for building custom
/// applications to feed through the DSE flow.
pub mod builders {
    pub use crate::kernels::{
        abs_diff, adder_tree, avg2, avg4, clamp, dot_const, max_tree, median9_approx, min_tree,
        normalize, relu, relu6, tone_segment,
    };
}

use apex_ir::Graph;
use serde::{Deserialize, Serialize};

/// Application domain (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Image processing ("IP").
    ImageProcessing,
    /// Machine learning ("ML").
    MachineLearning,
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Domain::ImageProcessing => write!(f, "IP"),
            Domain::MachineLearning => write!(f, "ML"),
        }
    }
}

/// Workload metadata accompanying an application graph.
///
/// `mem_tiles` and `io_tiles` describe the buffering the application's
/// memory schedule requires; they come from the paper's Table 3 (they are
/// constant across PE variants there, i.e. a property of the application,
/// not of the PE under exploration).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppInfo {
    /// Short identifier (e.g. "camera").
    pub name: String,
    /// Application domain.
    pub domain: Domain,
    /// One-line description (Table 1).
    pub description: String,
    /// Memory tiles the application's buffering requires.
    pub mem_tiles: usize,
    /// I/O tiles used at the array boundary.
    pub io_tiles: usize,
    /// Output elements computed in parallel by the unrolled graph.
    pub unroll: usize,
    /// Total output elements per frame/layer (for runtime computation).
    pub output_pixels: u64,
}

/// A benchmark application: metadata plus its unrolled dataflow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    /// Workload metadata.
    pub info: AppInfo,
    /// The unrolled compute dataflow graph.
    pub graph: Graph,
}

impl Application {
    /// Bundles metadata with a graph.
    pub fn new(info: AppInfo, graph: Graph) -> Self {
        Application { info, graph }
    }

    /// Cycles needed to stream one frame/layer through the fully
    /// pipelined array at one window per cycle: outputs / unroll.
    pub fn steady_state_cycles(&self) -> u64 {
        self.info.output_pixels / self.info.unroll as u64
    }
}

/// The six applications analyzed by the paper's DSE (Table 1).
pub fn analyzed_apps() -> Vec<Application> {
    vec![
        camera_pipeline(),
        harris(),
        gaussian(),
        unsharp(),
        resnet_layer(),
        mobilenet_layer(),
    ]
}

/// The four image-processing applications used to build PE IP.
pub fn ip_apps() -> Vec<Application> {
    vec![camera_pipeline(), harris(), gaussian(), unsharp()]
}

/// The two machine-learning applications used to build PE ML.
pub fn ml_apps() -> Vec<Application> {
    vec![resnet_layer(), mobilenet_layer()]
}

/// Applications *not* analyzed during PE IP creation (Section 5.2's
/// domain-generalization study, Fig. 13).
pub fn unseen_apps() -> Vec<Application> {
    vec![laplacian_pyramid(), stereo(), fast_corner()]
}

/// Looks an application up by its short name, across all nine benchmarks.
pub fn by_name(name: &str) -> Option<Application> {
    analyzed_apps()
        .into_iter()
        .chain(unseen_apps())
        .find(|a| a.info.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table1() {
        let apps = analyzed_apps();
        let names: Vec<&str> = apps.iter().map(|a| a.info.name.as_str()).collect();
        assert_eq!(
            names,
            ["camera", "harris", "gaussian", "unsharp", "resnet", "mobilenet"]
        );
        assert!(apps
            .iter()
            .take(4)
            .all(|a| a.info.domain == Domain::ImageProcessing));
        assert!(apps
            .iter()
            .skip(4)
            .all(|a| a.info.domain == Domain::MachineLearning));
    }

    #[test]
    fn every_app_graph_is_valid_and_nontrivial() {
        for app in analyzed_apps().into_iter().chain(unseen_apps()) {
            assert!(app.graph.try_validate().is_ok(), "{}", app.info.name);
            assert!(
                app.graph.compute_op_count() >= 20,
                "{} too small",
                app.info.name
            );
            assert!(!app.graph.primary_outputs().is_empty());
        }
    }

    #[test]
    fn by_name_finds_all_apps() {
        for name in [
            "camera",
            "harris",
            "gaussian",
            "unsharp",
            "resnet",
            "mobilenet",
            "laplacian",
            "stereo",
            "fast",
        ] {
            assert!(by_name(name).is_some(), "{name}");
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn steady_state_cycles_accounts_for_unroll() {
        let app = camera_pipeline();
        assert_eq!(app.steady_state_cycles(), 1920 * 1080 / 4);
    }

    #[test]
    fn unrolled_graphs_scale_with_unroll_factor() {
        let g1 = gaussian();
        let per_pixel = g1.graph.compute_op_count() / g1.info.unroll;
        assert!((15..=20).contains(&per_pixel), "3x3 conv is ~18 ops");
    }
}
