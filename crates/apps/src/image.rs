//! Image-processing benchmark applications (Table 1, domain "IP").
//!
//! Each builder lowers the application the way the AHA Halide-to-CoreIR
//! flow does: the compute kernel for one output pixel is expressed as a
//! dataflow graph over a window of input pixels, then unrolled so several
//! output pixels are computed in parallel (the paper computes 4 camera-
//! pipeline pixels per cycle to fill the 32×16 array).

use crate::kernels::{
    abs_diff, adder_tree, avg2, avg4, clamp, dot_const, median9_approx, normalize, tone_segment,
};
use crate::{AppInfo, Application, Domain};
use apex_ir::{Graph, NodeId, Op};

/// 3×3 Gaussian kernel (sum 16) used by blur-based applications.
const GAUSS3: [u16; 9] = [1, 2, 1, 2, 4, 2, 1, 2, 1];

fn window(g: &mut Graph, n: usize) -> Vec<NodeId> {
    (0..n).map(|_| g.input()).collect()
}

/// One camera-pipeline output pixel: denoise → demosaic → white balance →
/// colour-correction matrix → tone curve → contrast.
///
/// Uses every baseline-PE operation class except left shift and word-wise
/// bitwise logic, and costs ~90 primitive operations, matching Section 5.1.
fn camera_pixel(g: &mut Graph, w: &[NodeId; 9]) -> [NodeId; 3] {
    // Denoise: approximate 3×3 median, blended with the centre pixel when
    // the difference is small (16 + 4 ops).
    let med = median9_approx(g, w);
    let diff = abs_diff(g, w[4], med);
    let thresh = g.constant(24);
    let noisy = g.add(Op::Sgt, &[diff, thresh]);
    let den = g.add(Op::Mux, &[w[4], med, noisy]);

    // Demosaic: bilinear interpolation of the missing colour planes
    // (12 ops).
    let green = avg4(g, [w[1], w[3], w[5], w[7]]);
    let r_raw = avg2(g, w[0], w[8]);
    let red = avg2(g, r_raw, den);
    let b_raw = avg2(g, w[2], w[6]);
    let blue = avg2(g, b_raw, den);

    // White balance: per-channel constant gain in Q4 (6 ops).
    let wb = |g: &mut Graph, x: NodeId, gain: u16| -> NodeId {
        let c = g.constant(gain);
        let p = g.add(Op::Mul, &[x, c]);
        normalize(g, p, 4)
    };
    let red = wb(g, red, 19);
    let green = wb(g, green, 16);
    let blue = wb(g, blue, 21);

    // Colour-correction 3×3 matrix in Q4 with clamping (24 ops).
    let ccm_row = |g: &mut Graph, r: NodeId, gr: NodeId, b: NodeId, k: [u16; 3]| -> NodeId {
        let s = dot_const(g, &[r, gr, b], &k);
        let n = normalize(g, s, 4);
        clamp(g, n, 0, 255)
    };
    let red_c = ccm_row(g, red, green, blue, [20, 2, 1]);
    let green_c = ccm_row(g, red, green, blue, [2, 18, 2]);
    let blue_c = ccm_row(g, red, green, blue, [1, 3, 19]);

    // Tone curve: one piecewise-linear knee per channel (18 ops).
    let red_t = tone_segment(g, red_c, 128, 128, 8, 4);
    let green_t = tone_segment(g, green_c, 128, 128, 8, 4);
    let blue_t = tone_segment(g, blue_c, 128, 128, 8, 4);

    // Contrast stretch about mid-grey using an arithmetic shift (12 ops).
    let contrast = |g: &mut Graph, x: NodeId| -> NodeId {
        let mid = g.constant(128);
        let d = g.add(Op::Sub, &[x, mid]);
        let amt = g.constant(4);
        let boosted = g.add(Op::Mul, &[d, amt]);
        let two = g.constant(2);
        let scaled = g.add(Op::Ashr, &[boosted, two]);
        let y = g.add(Op::Add, &[scaled, mid]);
        clamp(g, y, 0, 255)
    };
    [contrast(g, red_t), contrast(g, green_t), contrast(g, blue_t)]
}

/// Camera pipeline: denoises, demosaics, colour-corrects, and tone-maps raw
/// sensor data (paper Section 5.1; ~90 ops/pixel, 4 pixels unrolled).
pub fn camera_pipeline() -> Application {
    let mut g = Graph::new("camera_pipeline");
    for _ in 0..4 {
        // window(_, 9) always yields exactly 9 taps; skip the pixel rather
        // than panic if that ever changed
        let Ok(w) = <[NodeId; 9]>::try_from(window(&mut g, 9)) else {
            continue;
        };
        let rgb = camera_pixel(&mut g, &w);
        for ch in rgb {
            g.output(ch);
        }
    }
    Application::new(
        AppInfo {
            name: "camera".into(),
            domain: Domain::ImageProcessing,
            description: "Transforms camera data into an RGB image".into(),
            mem_tiles: 39,
            io_tiles: 28,
            unroll: 4,
            output_pixels: 1920 * 1080,
        },
        g,
    )
}

/// One Harris-corner response pixel over a 5×5 window.
fn harris_pixel(g: &mut Graph, w: &[NodeId]) -> NodeId {
    assert_eq!(w.len(), 25);
    let at = |r: usize, c: usize| w[r * 5 + c];
    // Gradients at the 9 interior positions.
    let mut sxx_terms = Vec::new();
    let mut sxy_terms = Vec::new();
    let mut syy_terms = Vec::new();
    for r in 1..4 {
        for c in 1..4 {
            let ix = g.add(Op::Sub, &[at(r, c + 1), at(r, c - 1)]);
            let iy = g.add(Op::Sub, &[at(r + 1, c), at(r - 1, c)]);
            sxx_terms.push(g.add(Op::Mul, &[ix, ix]));
            sxy_terms.push(g.add(Op::Mul, &[ix, iy]));
            syy_terms.push(g.add(Op::Mul, &[iy, iy]));
        }
    }
    let sxx = adder_tree(g, &sxx_terms);
    let sxy = adder_tree(g, &sxy_terms);
    let syy = adder_tree(g, &syy_terms);
    // response = det - k·trace², k = 1/16 via arithmetic shift
    let det_a = g.add(Op::Mul, &[sxx, syy]);
    let det_b = g.add(Op::Mul, &[sxy, sxy]);
    let det = g.add(Op::Sub, &[det_a, det_b]);
    let trace = g.add(Op::Add, &[sxx, syy]);
    let tr2 = g.add(Op::Mul, &[trace, trace]);
    let four = g.constant(4);
    let k_tr2 = g.add(Op::Ashr, &[tr2, four]);
    let resp = g.add(Op::Sub, &[det, k_tr2]);
    // threshold into a corner mask value
    let th = g.constant(512);
    let is_corner = g.add(Op::Sgt, &[resp, th]);
    let zero = g.constant(0);
    g.add(Op::Mux, &[zero, resp, is_corner])
}

/// Harris corner detection (Table 1).
pub fn harris() -> Application {
    let mut g = Graph::new("harris");
    for _ in 0..2 {
        let w = window(&mut g, 25);
        let r = harris_pixel(&mut g, &w);
        g.output(r);
    }
    Application::new(
        AppInfo {
            name: "harris".into(),
            domain: Domain::ImageProcessing,
            description: "Identifies corners within an image".into(),
            mem_tiles: 17,
            io_tiles: 10,
            unroll: 2,
            output_pixels: 1920 * 1080,
        },
        g,
    )
}

/// One Gaussian-blur pixel: 3×3 constant convolution normalized by 16.
pub(crate) fn gaussian_pixel_kernel(g: &mut Graph, w: &[NodeId]) -> NodeId {
    let s = dot_const(g, w, &GAUSS3);
    normalize(g, s, 4)
}

/// Gaussian blur (Table 1).
pub fn gaussian() -> Application {
    let mut g = Graph::new("gaussian");
    for _ in 0..8 {
        let w = window(&mut g, 9);
        let b = gaussian_pixel_kernel(&mut g, &w);
        g.output(b);
    }
    Application::new(
        AppInfo {
            name: "gaussian".into(),
            domain: Domain::ImageProcessing,
            description: "Blurs an image".into(),
            mem_tiles: 14,
            io_tiles: 42,
            unroll: 8,
            output_pixels: 1920 * 1080,
        },
        g,
    )
}

/// One unsharp-mask pixel: x + gain·(x − blur(x)), with an adaptive bypass
/// for flat regions.
fn unsharp_pixel(g: &mut Graph, w: &[NodeId]) -> NodeId {
    let blur = gaussian_pixel_kernel(g, w);
    let center = w[4];
    let high = g.add(Op::Sub, &[center, blur]);
    let gain = g.constant(6);
    let amplified = g.add(Op::Mul, &[high, gain]);
    let two = g.constant(2);
    let scaled = g.add(Op::Ashr, &[amplified, two]);
    let sharp = g.add(Op::Add, &[center, scaled]);
    let clamped = clamp(g, sharp, 0, 255);
    // flat-region bypass: keep the original when |x - blur| is tiny
    let act = abs_diff(g, center, blur);
    let th = g.constant(2);
    let edgy = g.add(Op::Ugt, &[act, th]);
    g.add(Op::Mux, &[center, clamped, edgy])
}

/// Unsharp masking (Table 1).
pub fn unsharp() -> Application {
    let mut g = Graph::new("unsharp");
    for _ in 0..8 {
        let w = window(&mut g, 9);
        let s = unsharp_pixel(&mut g, &w);
        g.output(s);
    }
    Application::new(
        AppInfo {
            name: "unsharp".into(),
            domain: Domain::ImageProcessing,
            description: "Sharpens an image".into(),
            mem_tiles: 39,
            io_tiles: 27,
            unroll: 8,
            output_pixels: 1920 * 1080,
        },
        g,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_ir::{evaluate, OpKind, Value};

    #[test]
    fn camera_matches_paper_op_budget() {
        let app = camera_pipeline();
        // ~90 primitive ops per pixel, 4 pixels (Section 5.1)
        let per_pixel = app.graph.compute_op_count() / 4;
        assert!(
            (80..=100).contains(&per_pixel),
            "camera pipeline should cost ~90 ops/pixel, got {per_pixel}"
        );
    }

    #[test]
    fn camera_avoids_shl_and_bitwise_logic() {
        // "It uses all the operations in the baseline PE except for left
        // shift and bitwise logical operations" (Section 5.1).
        let app = camera_pipeline();
        let h = app.graph.op_histogram();
        for k in [OpKind::Shl, OpKind::And, OpKind::Or, OpKind::Xor, OpKind::Lut] {
            assert!(!h.contains_key(&k), "camera should not use {k:?}");
        }
        for k in [OpKind::Mul, OpKind::Add, OpKind::Sub, OpKind::Ashr, OpKind::Mux] {
            assert!(h.contains_key(&k), "camera should use {k:?}");
        }
    }

    #[test]
    fn camera_flat_grey_stays_grey() {
        let app = camera_pipeline();
        let n = app.graph.primary_inputs().len();
        let out = evaluate(&app.graph, &vec![Value::Word(128); n]);
        // mid-grey is a fixed point of denoise/demosaic and sits at the
        // tone-curve knee and contrast midpoint; white balance scales
        // channels, so just require a sane in-range image
        for v in out {
            let v = v.word();
            assert!(v <= 255, "camera output {v} out of 8-bit range");
        }
    }

    #[test]
    fn harris_flat_image_has_no_corners() {
        let app = harris();
        let n = app.graph.primary_inputs().len();
        let out = evaluate(&app.graph, &vec![Value::Word(77); n]);
        for v in out {
            assert_eq!(v.word(), 0, "flat image must produce zero response");
        }
    }

    #[test]
    fn gaussian_preserves_constant_images() {
        let app = gaussian();
        let n = app.graph.primary_inputs().len();
        for level in [0u16, 13, 255] {
            let out = evaluate(&app.graph, &vec![Value::Word(level); n]);
            for v in &out {
                assert_eq!(v.word(), level, "blur of constant {level} image");
            }
        }
    }

    #[test]
    fn unsharp_is_identity_on_flat_regions() {
        let app = unsharp();
        let n = app.graph.primary_inputs().len();
        let out = evaluate(&app.graph, &vec![Value::Word(99); n]);
        for v in out {
            assert_eq!(v.word(), 99);
        }
    }

    #[test]
    fn unsharp_amplifies_edges() {
        let app = unsharp();
        // first window: bright centre on dark background
        let n = app.graph.primary_inputs().len();
        let mut inputs = vec![Value::Word(10); n];
        inputs[4] = Value::Word(200);
        let out = evaluate(&app.graph, &inputs);
        assert!(out[0].word() > 200, "sharpened edge should overshoot");
    }

    #[test]
    fn all_ip_graphs_validate() {
        for app in [camera_pipeline(), harris(), gaussian(), unsharp()] {
            assert!(app.graph.try_validate().is_ok(), "{}", app.info.name);
            assert!(app.graph.compute_op_count() > 0);
        }
    }
}
