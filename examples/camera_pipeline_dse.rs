//! Camera-pipeline design-space exploration (paper Section 5.1).
//!
//! Reproduces the Fig. 11 / Table 2 sweep: the baseline PE, then PE 1–4
//! with increasing specialization, reporting PE count, area, energy, and
//! performance per mm² for a 1920×1080 frame at the 1.1 ns clock.
//!
//! ```bash
//! cargo run --release --example camera_pipeline_dse
//! ```

use apex::core::{baseline_variant, evaluate_app, specialization_ladder, EvalOptions, PeVariant};
use apex::merge::MergeOptions;
use apex::mining::MinerConfig;
use apex::tech::TechModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = apex::apps::camera_pipeline();
    let tech = TechModel::default();
    println!(
        "camera pipeline: {} primitive ops/pixel, {} pixels unrolled",
        app.graph.compute_op_count() / app.info.unroll,
        app.info.unroll
    );

    println!("\nmining + merging the specialization ladder (PE 1..PE 4)...");
    let ladder = specialization_ladder(
        &app,
        3,
        &MinerConfig::default(),
        &MergeOptions::default(),
        &tech,
    )?;

    let options = EvalOptions {
        pipelined: true,
        ..EvalOptions::default()
    };
    let mut variants: Vec<(String, PeVariant)> =
        vec![("PE Base".into(), baseline_variant(&[&app])?)];
    for (i, v) in ladder.into_iter().enumerate() {
        variants.push((format!("PE {}", i + 1), v));
    }

    println!(
        "\n{:<8} {:>6} {:>12} {:>14} {:>10} {:>16}",
        "variant", "#PEs", "area/PE um2", "total PE um2", "stages", "frames/ms/mm2"
    );
    for (name, v) in &variants {
        let e = evaluate_app(v, &app, &tech, &options)?;
        println!(
            "{:<8} {:>6} {:>12.1} {:>14.0} {:>10} {:>16.2}",
            name,
            e.pnr.pe_tiles,
            e.pe_core_area / e.pnr.pe_tiles as f64,
            e.pe_core_area,
            e.pe_stages,
            e.perf_per_pe_mm2()
        );
    }

    println!("\n(the paper's Table 2: 232 PEs at 988.81 um2 for the baseline,");
    println!(" falling to 152 PEs at 339.09 um2 for PE 4, a 4x perf/mm2 gain)");
    Ok(())
}
