//! Quickstart: run the complete APEX flow on one application.
//!
//! Builds the Gaussian-blur benchmark, evaluates it on the general-purpose
//! baseline CGRA, then lets APEX generate a specialized PE for it and
//! compares area/energy — the paper's headline experiment in miniature.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use apex::core::{
    baseline_variant, evaluate_app, specialized_variant, EvalOptions, SubgraphSelection,
};
use apex::merge::MergeOptions;
use apex::mining::MinerConfig;
use apex::tech::TechModel;
use std::collections::BTreeSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = apex::apps::gaussian();
    let tech = TechModel::default();
    let options = EvalOptions::default();

    println!("application: {} ({} ops, {} outputs/cycle)",
        app.info.name,
        app.graph.compute_op_count(),
        app.info.unroll);

    // 1. the general-purpose baseline CGRA (paper Fig. 1)
    let baseline = baseline_variant(&[&app])?;
    let base = evaluate_app(&baseline, &app, &tech, &options)?;
    println!(
        "\nbaseline PE : {:>4} PEs | PE area {:>9.0} um2 | CGRA energy {:>7.1} pJ/cycle",
        base.pnr.pe_tiles,
        base.pe_core_area,
        base.energy_per_cycle.total()
    );

    // 2. APEX: mine frequent subgraphs, merge them into a specialized PE,
    //    synthesize its compiler rules, and re-evaluate
    let spec = specialized_variant(
        "pe_spec_gaussian",
        &[&app],
        &[&app],
        &MinerConfig::default(),
        &SubgraphSelection::default(),
        &MergeOptions::default(),
        &tech,
        &BTreeSet::new(),
    )?;
    println!(
        "\nAPEX merged {} frequent subgraphs into '{}' ({} functional units, {} rewrite rules)",
        spec.sources.len(),
        spec.spec.name,
        spec.spec.datapath.node_count(),
        spec.rules.len()
    );
    let specialized = evaluate_app(&spec, &app, &tech, &options)?;
    println!(
        "specialized : {:>4} PEs | PE area {:>9.0} um2 | CGRA energy {:>7.1} pJ/cycle",
        specialized.pnr.pe_tiles,
        specialized.pe_core_area,
        specialized.energy_per_cycle.total()
    );

    println!(
        "\nsavings vs baseline: {:.0}% PE area, {:.0}% CGRA energy",
        100.0 * (1.0 - specialized.pe_core_area / base.pe_core_area),
        100.0 * (1.0 - specialized.energy_per_cycle.total() / base.energy_per_cycle.total())
    );
    Ok(())
}
