//! Domain generalization (paper Section 5.2, Fig. 13).
//!
//! Builds PE IP from the four analyzed image-processing applications,
//! then maps three applications APEX never saw during analysis —
//! Laplacian pyramid, stereo, FAST corner detection — and shows the PE is
//! specialized to the *domain*, not just the analyzed applications.
//!
//! ```bash
//! cargo run --release --example domain_generalization
//! ```

use apex::core::{
    baseline_variant, evaluate_app, specialized_variant, EvalOptions, SubgraphSelection,
};
use apex::ir::OpKind;
use apex::merge::MergeOptions;
use apex::mining::MinerConfig;
use apex::tech::TechModel;
use std::collections::BTreeSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analyzed = apex::apps::ip_apps();
    let unseen = apex::apps::unseen_apps();
    let tech = TechModel::default();

    println!("analyzing: {:?}", analyzed.iter().map(|a| a.info.name.as_str()).collect::<Vec<_>>());
    println!("unseen   : {:?}", unseen.iter().map(|a| a.info.name.as_str()).collect::<Vec<_>>());

    // PE IP analyzes only the four IP apps; rules are synthesized for the
    // unseen ones too (the baseline LUT is retained for predicate logic)
    let mut eval_apps: Vec<&apex::apps::Application> = analyzed.iter().collect();
    eval_apps.extend(unseen.iter());
    let arefs: Vec<&apex::apps::Application> = analyzed.iter().collect();
    let extra: BTreeSet<OpKind> = [OpKind::Lut, OpKind::BitConst, OpKind::Abs]
        .into_iter()
        .collect();
    let pe_ip = specialized_variant(
        "pe_ip",
        &arefs,
        &eval_apps,
        &MinerConfig::default(),
        &SubgraphSelection::default(),
        &MergeOptions::default(),
        &tech,
        &extra,
    )?;
    let baseline = baseline_variant(&eval_apps)?;
    println!(
        "\nPE IP merges {} subgraphs; PE area {:.0} um2 (baseline {:.0} um2)",
        pe_ip.sources.len(),
        pe_ip.spec.area(&tech).total(),
        baseline.spec.area(&tech).total()
    );

    let options = EvalOptions::default();
    println!(
        "\n{:<11} {:>10} {:>9} {:>12} {:>13}",
        "app", "#PEs base", "#PEs IP", "area vs base", "energy vs base"
    );
    for app in &unseen {
        let base = evaluate_app(&baseline, app, &tech, &options)?;
        let ip = evaluate_app(&pe_ip, app, &tech, &options)?;
        println!(
            "{:<11} {:>10} {:>9} {:>11.2}x {:>12.2}x",
            app.info.name,
            base.pnr.pe_tiles,
            ip.pnr.pe_tiles,
            ip.pe_core_area / base.pe_core_area,
            ip.energy_per_cycle.pe / base.energy_per_cycle.pe
        );
    }
    println!("\n(the paper reports 12-25% area and 66-78% energy reduction on unseen apps)");
    Ok(())
}
