//! Machine-learning accelerator generation (paper Sections 5.3–5.4).
//!
//! Builds PE ML from the ResNet and MobileNet layers, maps both layers
//! onto the resulting CGRA, and compares against the baseline CGRA and
//! the analytic FPGA/Simba comparators of Fig. 18. Also dumps the
//! generated PE's Verilog.
//!
//! ```bash
//! cargo run --release --example ml_accelerator
//! ```

use apex::core::{
    baseline_variant, evaluate_app, specialized_variant, EvalOptions, SubgraphSelection,
};
use apex::eval::baselines::{fpga, simba};
use apex::merge::MergeOptions;
use apex::mining::MinerConfig;
use apex::pe::emit_verilog;
use apex::tech::TechModel;
use std::collections::BTreeSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let apps = apex::apps::ml_apps();
    let refs: Vec<&apex::apps::Application> = apps.iter().collect();
    let tech = TechModel::default();

    println!("building PE ML from {} layers...", apps.len());
    let pe_ml = specialized_variant(
        "pe_ml",
        &refs,
        &refs,
        &MinerConfig::default(),
        &SubgraphSelection {
            per_app: 2,
            ..SubgraphSelection::default()
        },
        &MergeOptions::default(),
        &tech,
        &BTreeSet::new(),
    )?;
    println!(
        "PE ML: {} functional units, {} configs, {} rewrite rules, {:.0} um2",
        pe_ml.spec.datapath.node_count(),
        pe_ml.spec.datapath.configs.len(),
        pe_ml.rules.len(),
        pe_ml.spec.area(&tech).total()
    );

    // hardware generation: the PE's Verilog
    let rtl = emit_verilog(&pe_ml.spec);
    let path = std::env::temp_dir().join("pe_ml.v");
    std::fs::write(&path, &rtl)?;
    println!(
        "wrote {} lines of Verilog to {}",
        rtl.lines().count(),
        path.display()
    );

    let baseline = baseline_variant(&refs)?;
    let options = EvalOptions {
        pipelined: true,
        ..EvalOptions::default()
    };

    for app in &apps {
        println!("\n--- {} layer ---", app.info.name);
        let f = fpga(app, &tech);
        println!("{:<11} {:>10.1} uJ {:>10.3} ms", "FPGA", f.energy_uj, f.runtime_ms);
        let base = evaluate_app(&baseline, app, &tech, &options)?;
        println!(
            "{:<11} {:>10.1} uJ {:>10.3} ms  ({} PEs)",
            "CGRA base",
            base.total_energy_uj(),
            base.runtime_ms(),
            base.pnr.pe_tiles
        );
        let ml = evaluate_app(&pe_ml, app, &tech, &options)?;
        println!(
            "{:<11} {:>10.1} uJ {:>10.3} ms  ({} PEs)",
            "CGRA-ML",
            ml.total_energy_uj(),
            ml.runtime_ms(),
            ml.pnr.pe_tiles
        );
        let s = simba(app, &tech);
        println!("{:<11} {:>10.1} uJ {:>10.3} ms", "Simba", s.energy_uj, s.runtime_ms);
    }
    Ok(())
}
