//! Streams a whole (small) image through the pipelined, specialized CGRA
//! netlist — one window per cycle, exactly how the real array consumes a
//! frame from its memory tiles — and checks the output image pixel-for-
//! pixel against the interpreter-level reference.

use apex::apps::{gaussian, run_3x3, Image};
use apex::core::{specialized_variant, SubgraphSelection};
use apex::map::map_application;
use apex::merge::MergeOptions;
use apex::mining::MinerConfig;
use apex::pipeline::{pipeline_application, AppPipelineOptions};
use apex::tech::TechModel;
use std::collections::BTreeSet;

#[test]
fn gaussian_frame_streams_through_the_specialized_cgra() {
    let app = gaussian();
    let tech = TechModel::default();
    let variant = specialized_variant(
        "pe_spec_gaussian",
        &[&app],
        &[&app],
        &MinerConfig::default(),
        &SubgraphSelection::default(),
        &MergeOptions::default(),
        &tech,
        &BTreeSet::new(),
    )
    .unwrap();
    let design = map_application(&app.graph, &variant.spec.datapath, &variant.rules)
        .expect("gaussian maps on its specialized PE");
    let pe_latency = 2;
    let (netlist, report) = pipeline_application(
        &design.netlist,
        &variant.rules,
        pe_latency,
        &AppPipelineOptions::default(),
    )
    .unwrap();

    // golden: interpreter-level reference over the image
    let img = Image::from_fn(10, 6, |x, y| ((x * 23 + y * 57) % 211) as u16);
    let golden = &run_3x3(&app, &img)[0];

    // fabric: one window per cycle per unrolled slot; we feed the same
    // window to every slot and read slot 0 (mirroring run_3x3)
    let n_in = app.graph.primary_inputs().len();
    let unroll = app.info.unroll;
    assert_eq!(n_in, unroll * 9);
    let pixels: Vec<(usize, usize)> = (0..img.height())
        .flat_map(|y| (0..img.width()).map(move |x| (x, y)))
        .collect();
    let cycles = pixels.len();
    let mut streams: Vec<Vec<u16>> = vec![Vec::with_capacity(cycles); n_in];
    for &(x, y) in &pixels {
        let mut window = Vec::with_capacity(9);
        for dy in -1isize..=1 {
            for dx in -1isize..=1 {
                window.push(img.at(x as isize + dx, y as isize + dy));
            }
        }
        for u in 0..unroll {
            for (k, &v) in window.iter().enumerate() {
                streams[u * 9 + k].push(v);
            }
        }
    }

    let (outs, _) = netlist.simulate(
        &variant.spec.datapath,
        &variant.rules,
        &streams,
        &[],
        pe_latency,
    )
    .unwrap();
    let lat = report.latency as usize;
    let mut result = Image::filled(img.width(), img.height(), 0);
    for (t, &(x, y)) in pixels.iter().enumerate() {
        result.set(x, y, outs[0][t + lat]);
    }
    assert_eq!(
        &result, golden,
        "streamed CGRA output image must equal the reference image"
    );
}
