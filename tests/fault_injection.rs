//! Deterministic fault injection over the full DSE flow.
//!
//! For every pipeline stage we arm its fail point, run the complete
//! mine→merge→rewrite→map→pipeline→place→route flow on three real
//! applications, and require a *reported* outcome: a [`DseOutcome`] whose
//! degradation record names the injected stage — and never a panic or a
//! process abort. Run with `cargo test --features fault-injection`.

#![cfg(feature = "fault-injection")]

use apex::apps::{gaussian, harris, unsharp, Application};
use apex::core::{
    dse_evaluate_app, dse_evaluate_suite, specialized_variant, DseOptions, PeVariant,
    SubgraphSelection,
};
use apex::fault::{failpoints, ApexError, Stage};
use apex::merge::MergeOptions;
use apex::mining::MinerConfig;
use apex::tech::TechModel;
use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The fail-point registry is process-global, so tests that arm sites must
/// not interleave; each takes this lock and disarms on drop.
struct Armed {
    _guard: MutexGuard<'static, ()>,
}

impl Armed {
    fn new(site: &str) -> Self {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = LOCK
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        failpoints::disarm_all();
        failpoints::arm(site);
        Armed { _guard: guard }
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        failpoints::disarm_all();
    }
}

fn apps() -> Vec<Application> {
    vec![gaussian(), harris(), unsharp()]
}

fn build_variant(apps: &[Application]) -> Result<PeVariant, ApexError> {
    let refs: Vec<&Application> = apps.iter().collect();
    specialized_variant(
        "pe_fault_test",
        &refs,
        &refs,
        &MinerConfig::default(),
        &SubgraphSelection::default(),
        &MergeOptions::default(),
        &TechModel::default(),
        &BTreeSet::new(),
    )
}

/// Runs the full flow with `site` armed during variant construction and
/// evaluation, and asserts every app yields a reported, degraded outcome
/// naming `stage`.
fn assert_fault_is_reported(site: &str, stage: Stage) {
    let _armed = Armed::new(site);
    let apps = apps();
    let tech = TechModel::default();
    let variant = build_variant(&apps);
    let refs: Vec<&Application> = apps.iter().collect();
    let outcomes = dse_evaluate_suite(&variant, &refs, &tech, &DseOptions::default());
    assert_eq!(outcomes.len(), apps.len());
    for (app, o) in apps.iter().zip(&outcomes) {
        assert!(
            o.is_degraded(),
            "{site} on {}: outcome must be degraded",
            app.info.name
        );
        assert!(
            o.degradations.iter().any(|d| d.stage == stage),
            "{site} on {}: expected a {} degradation, got [{}]",
            app.info.name,
            stage,
            o.degradation_summary()
        );
    }
}

#[test]
fn injected_mine_fault_degrades_every_app() {
    // mining failure per source app is recoverable: no subgraphs from that
    // app, so the variant degenerates toward the baseline but still runs
    let _armed = Armed::new("mine::start");
    let apps = apps();
    let tech = TechModel::default();
    let variant = build_variant(&apps).expect("mining faults are recoverable");
    assert!(variant.degradations.iter().any(|d| d.stage == Stage::Mine));
    let refs: Vec<&Application> = apps.iter().collect();
    for o in dse_evaluate_suite(&Ok(variant), &refs, &tech, &DseOptions::default()) {
        assert!(o.is_degraded());
        assert!(o.result.is_ok(), "degenerate variant must still evaluate");
        assert!(o.degradations.iter().any(|d| d.stage == Stage::Mine));
    }
}

#[test]
fn injected_merge_fault_degrades_every_app() {
    // merge failure keeps the previous datapath (greedy incumbent → PE1)
    let _armed = Armed::new("merge::start");
    let apps = apps();
    let tech = TechModel::default();
    let variant = build_variant(&apps).expect("merge faults are recoverable");
    assert!(variant.degradations.iter().any(|d| d.stage == Stage::Merge));
    let refs: Vec<&Application> = apps.iter().collect();
    for o in dse_evaluate_suite(&Ok(variant), &refs, &tech, &DseOptions::default()) {
        assert!(o.is_degraded());
        assert!(o.result.is_ok(), "fallback PE must still evaluate");
    }
}

#[test]
fn injected_rewrite_fault_is_reported_per_app() {
    // rewrite rules are indispensable: construction fails, and the suite
    // reports one degraded outcome per app instead of aborting
    assert_fault_is_reported("rewrite::start", Stage::Rewrite);
}

#[test]
fn injected_map_fault_is_reported_per_app() {
    assert_fault_is_reported("map::start", Stage::Map);
}

#[test]
fn injected_pipeline_fault_falls_back_to_unpipelined() {
    let _armed = Armed::new("pipeline::start");
    let apps = apps();
    let tech = TechModel::default();
    let variant = build_variant(&apps).expect("variant builds before evaluation");
    let mut options = DseOptions::default();
    options.eval.pipelined = true;
    for app in &apps {
        let o = dse_evaluate_app(&variant, app, &tech, &options);
        assert!(o.is_degraded());
        assert!(
            o.result.is_ok(),
            "{}: unpipelined fallback must evaluate",
            app.info.name
        );
        assert!(o.degradations.iter().any(|d| d.stage == Stage::Pipeline));
    }
}

#[test]
fn injected_place_fault_is_reported_per_app() {
    let _armed = Armed::new("place::start");
    let apps = apps();
    let tech = TechModel::default();
    let variant = build_variant(&apps).expect("variant builds before evaluation");
    for app in &apps {
        let o = dse_evaluate_app(&variant, app, &tech, &DseOptions::default());
        assert!(o.is_degraded());
        assert!(o.result.is_err(), "an unplaceable app is skipped");
        assert!(o.degradations.iter().any(|d| d.stage == Stage::Place));
    }
}

#[test]
fn injected_route_fault_is_reported_per_app() {
    let _armed = Armed::new("route::start");
    let apps = apps();
    let tech = TechModel::default();
    let variant = build_variant(&apps).expect("variant builds before evaluation");
    for app in &apps {
        let o = dse_evaluate_app(&variant, app, &tech, &DseOptions::default());
        assert!(o.is_degraded());
        assert!(o.result.is_err(), "an unroutable app is skipped");
        assert!(o.degradations.iter().any(|d| d.stage == Stage::Route));
    }
}

#[test]
fn injected_synth_panic_becomes_rewrite_error_with_payload() {
    // a panicking synthesis worker must not unwind the caller: the job
    // pool catches it and the rewrite stage reports an ApexError whose
    // cause chain carries the panic payload
    let _armed = Armed::new("rewrite::synth_panic");
    let apps = apps();
    let tech = TechModel::default();
    let err = build_variant(&apps).expect_err("panicking synthesis worker fails construction");
    assert_eq!(err.stage(), Stage::Rewrite);
    let chain = err.render_chain();
    assert!(
        chain.contains("injected panic at rewrite::synth_panic"),
        "panic payload missing from cause chain: {chain}"
    );
    // and the suite degrades per app instead of unwinding
    let refs: Vec<&Application> = apps.iter().collect();
    for o in dse_evaluate_suite(&Err(err), &refs, &tech, &DseOptions::default()) {
        assert!(o.is_degraded());
        assert!(o.result.is_err());
        assert!(o.degradations.iter().any(|d| d.stage == Stage::Rewrite));
    }
}

#[test]
fn injected_mine_panic_degrades_not_aborts() {
    // a panicking miner worker is caught by the pool and degrades exactly
    // like a mining error: that app contributes no subgraphs
    let _armed = Armed::new("core::mine_panic");
    let apps = apps();
    let variant = build_variant(&apps).expect("a panicking miner degrades, not aborts");
    let mine_degs: Vec<_> = variant
        .degradations
        .iter()
        .filter(|d| d.stage == Stage::Mine)
        .collect();
    assert_eq!(mine_degs.len(), apps.len(), "one skipped mining pass per app");
    for d in &mine_degs {
        assert!(
            d.detail.contains("injected panic at core::mine_panic"),
            "panic payload missing from degradation: {}",
            d.detail
        );
    }
    let tech = TechModel::default();
    let refs: Vec<&Application> = apps.iter().collect();
    for o in dse_evaluate_suite(&Ok(variant.clone()), &refs, &tech, &DseOptions::default()) {
        assert!(o.is_degraded());
        assert!(o.result.is_ok(), "degenerate variant must still evaluate");
    }
}

/// The no-hang guarantee: a job hung at `sweep::job_timeout` (it spins
/// until its cancel flag goes up) is cancelled by the watchdog within its
/// deadline plus one time-slice, journaled as a timeout degradation, and
/// the sweep completes instead of hanging.
#[test]
fn hung_job_is_cancelled_by_the_watchdog_not_forever() {
    let _armed = Armed::new("sweep::job_timeout");
    let apps = apps();
    let tech = TechModel::default();
    let refs: Vec<&Application> = apps.iter().collect();
    let variant = apex::core::baseline_variant(&refs);
    let mut options = DseOptions::default();
    options.job_deadline = Some(std::time::Duration::from_millis(150));
    options.jobs = 2;
    let t0 = std::time::Instant::now();
    let outcomes = dse_evaluate_suite(&variant, &refs, &tech, &options);
    let elapsed = t0.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(30),
        "hung jobs must be cancelled, not waited out ({elapsed:?})"
    );
    assert_eq!(outcomes.len(), apps.len());
    for (app, o) in apps.iter().zip(&outcomes) {
        assert!(
            o.degradations
                .iter()
                .any(|d| d.stage == Stage::Sweep && d.kind == apex::fault::DegradationKind::TimedOut),
            "{}: expected a sweep timeout degradation, got [{}]",
            app.info.name,
            o.degradation_summary()
        );
    }
}

/// `sweep::interrupt_midsweep` simulates a Ctrl-C after the first
/// executed job: the checkpointed driver stops dispatching, reports a
/// partial run, and — once the fault is disarmed — a resume replays the
/// journal and completes identically to a clean run.
#[test]
fn interrupt_midsweep_failpoint_round_trips_through_resume() {
    use apex::core::{run_checkpointed, JobReport, SweepJob, SweepJobResult, SweepJournal};
    use apex::fault::Provenance;

    let dir = std::env::temp_dir().join(format!("apex-fault-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let journal = SweepJournal::at(dir.join("sweep.jsonl"));
    let jobs: Vec<SweepJob> = (0..4)
        .map(|i| SweepJob {
            key: 0x1000 + i,
            label: format!("job{i}"),
        })
        .collect();
    let run_job = |i: usize| -> Result<JobReport, ApexError> {
        Ok(JobReport {
            payload: format!("payload for job {i}\n"),
            provenance: Provenance::Completed,
            degradations: "-".to_owned(),
        })
    };

    let partial = {
        let _armed = Armed::new("sweep::interrupt_midsweep");
        run_checkpointed(&journal, &jobs, false, None, run_job).expect("partial run reports")
    };
    assert!(partial.interrupted, "armed fail point must stop the sweep");
    assert_eq!(partial.executed, 1, "exactly one job ran before the interrupt");

    // fault disarmed (Armed dropped): resume completes the sweep
    let resumed = run_checkpointed(&journal, &jobs, true, None, run_job).expect("resume completes");
    assert!(!resumed.interrupted);
    assert_eq!(resumed.replayed, 1);
    assert_eq!(resumed.executed, jobs.len() - 1);
    for (i, r) in resumed.results.iter().enumerate() {
        match r {
            SweepJobResult::Done { report, .. } => {
                assert_eq!(report.payload, format!("payload for job {i}\n"));
            }
            SweepJobResult::NotRun => panic!("job {i} missing after resume"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disarmed_flow_is_clean() {
    let _armed = Armed::new("no::such::site");
    let apps = apps();
    let tech = TechModel::default();
    let variant = build_variant(&apps).expect("clean build");
    assert!(variant.degradations.is_empty());
    for app in &apps {
        let o = dse_evaluate_app(&variant, app, &tech, &DseOptions::default());
        assert!(!o.is_degraded(), "{}", o.degradation_summary());
        assert!(o.result.is_ok());
    }
}

/// Injected journal I/O faults (`io::journal_enospc`, short write,
/// fsync failure) must never leave a torn record behind: the failed
/// append rolls the file back, the error is reported, and once the
/// fault clears the journal accepts appends again — replay sees only
/// whole records.
#[test]
fn injected_journal_io_faults_roll_back_cleanly() {
    use apex::core::{JournalRecord, SweepJournal};
    use apex::fault::Provenance;

    for site in [
        "io::journal_enospc",
        "io::journal_short_write",
        "io::journal_fsync",
    ] {
        let path = std::env::temp_dir().join(format!(
            "apex-iofault-journal-{}-{}.jsonl",
            site.replace(':', "_"),
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let journal = SweepJournal::at(&path);
        let rec = |key: u64| JournalRecord {
            job_key: key,
            label: format!("job{key}"),
            provenance: Provenance::Completed,
            degradations: "-".to_owned(),
            payload: format!("payload {key}\n"),
        };

        {
            let _armed = Armed::new(site);
            let err = journal.append(&rec(1)).expect_err(site);
            assert!(
                format!("{err}").contains("injected"),
                "{site}: the report must carry the injection provenance, got: {err}"
            );
            // the failed append rolled the file back — nothing torn on disk
            let len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            assert_eq!(len, 0, "{site}: a failed append must leave no bytes behind");
        }

        // fault cleared: the journal was rolled back, not poisoned
        journal.append(&rec(2)).expect("append after fault clears");
        let replay = journal.replay();
        assert_eq!(replay.records.len(), 1, "{site}");
        assert_eq!(replay.records[0].job_key, 2, "{site}");
        assert_eq!(replay.dropped_torn, 0, "{site}");
        assert_eq!(replay.dropped_corrupt, 0, "{site}");
        let _ = std::fs::remove_file(&path);
    }
}

/// A sweep whose journal hits injected ENOSPC on every append still
/// completes every job — it degrades to non-resumable (with a warning)
/// instead of failing, and the journal holds no partial records.
#[test]
fn journal_enospc_degrades_sweep_to_nonresumable() {
    use apex::core::{run_checkpointed, JobReport, SweepJob, SweepJobResult, SweepJournal};
    use apex::fault::Provenance;

    let path = std::env::temp_dir().join(format!(
        "apex-iofault-sweep-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let journal = SweepJournal::at(&path);
    let jobs: Vec<SweepJob> = (0..3)
        .map(|i| SweepJob {
            key: 0x2000 + i,
            label: format!("job{i}"),
        })
        .collect();
    let run = {
        let _armed = Armed::new("io::journal_enospc");
        run_checkpointed(&journal, &jobs, false, None, |i| {
            Ok(JobReport {
                payload: format!("payload {i}\n"),
                provenance: Provenance::Completed,
                degradations: "-".to_owned(),
            })
        })
        .expect("the sweep must survive a full journal")
    };
    assert_eq!(run.executed, jobs.len(), "every job still ran");
    assert!(run
        .results
        .iter()
        .all(|r| matches!(r, SweepJobResult::Done { .. })));
    // nothing checkpointed — and nothing torn — so a replay is empty
    let replay = journal.replay();
    assert!(replay.records.is_empty());
    assert_eq!(replay.dropped_torn + replay.dropped_corrupt, 0);
    let _ = std::fs::remove_file(&path);
}

/// Injected cache ENOSPC / short writes degrade to "just don't cache":
/// no stray tmp or partial entry files appear, lookups miss, and once
/// the fault clears the same key stores and loads normally.
#[test]
fn injected_cache_io_faults_skip_caching_without_stray_files() {
    use apex::core::{encode_variant, VariantCache};

    for site in ["io::cache_enospc", "io::cache_short_write"] {
        let dir = std::env::temp_dir().join(format!(
            "apex-iofault-cache-{}-{}",
            site.replace(':', "_"),
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = VariantCache::at(&dir);

        let _armed = Armed::new(site);
        let variant = build_variant(&apps()).expect("build is cache-independent");
        cache.store(0xC0FFEE, &variant);
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .map(|rd| {
                rd.flatten()
                    .map(|e| e.file_name().to_string_lossy().into_owned())
                    .collect()
            })
            .unwrap_or_default();
        assert!(
            leftovers.is_empty(),
            "{site}: a failed store must leave no entry or tmp files, found {leftovers:?}"
        );
        assert!(
            cache.load(0xC0FFEE).is_none(),
            "{site}: the failed store must read back as a miss"
        );
        drop(_armed);

        // fault cleared: caching resumes for the very same key
        cache.store(0xC0FFEE, &variant);
        let loaded = cache.load(0xC0FFEE).expect("store works once the disk recovers");
        assert_eq!(encode_variant(&loaded), encode_variant(&variant));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// `serve::cache_evict_race` simulates a concurrent evictor deleting the
/// victim file just before ours lands. Under that race, with lookups
/// hammering the same store from other threads, a load must only ever
/// return a fully-valid variant or a miss — never a partial entry — and
/// the store afterwards holds only whole `.var`/`.corrupt` files.
#[test]
fn cache_evict_race_never_serves_partial_or_quarantined_entries() {
    use apex::core::{encode_variant, VariantCache};

    let dir = std::env::temp_dir().join(format!(
        "apex-evict-race-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = VariantCache::at(&dir);

    let _armed = Armed::new("serve::cache_evict_race");
    let variant = build_variant(&apps()).expect("build");
    let golden = encode_variant(&variant);
    let keys: Vec<u64> = (1u64..=6).collect();
    for &k in &keys {
        cache.store(k, &variant);
    }
    let before = cache.total_bytes();
    assert!(before > 0, "the store must start populated");
    let cap = before / 3; // force most entries out, under the race

    std::thread::scope(|s| {
        s.spawn(|| {
            cache.evict_to_cap(cap);
        });
        for _ in 0..3 {
            s.spawn(|| {
                for _ in 0..20 {
                    for &k in &keys {
                        if let Some(v) = cache.load(k) {
                            assert_eq!(
                                encode_variant(&v),
                                golden,
                                "a concurrent load must never see a partial entry"
                            );
                        }
                    }
                }
            });
        }
    });

    // post-state: only whole entry files (or quarantine evidence), no tmp
    // residue, and every surviving entry still round-trips
    for entry in std::fs::read_dir(&dir).expect("cache dir").flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        assert!(
            name.ends_with(".var") || name.ends_with(".corrupt"),
            "unexpected residue in the store: {name}"
        );
        if let Some(hex) = name.strip_suffix(".var") {
            let key = u64::from_str_radix(hex, 16).expect("entry key");
            let v = cache.load(key).expect("surviving entries stay loadable");
            assert_eq!(encode_variant(&v), golden);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
