//! Workspace-level integration tests: the complete APEX flow — mining,
//! merging, rule synthesis, mapping, pipelining, place-and-route,
//! bitstream — on real applications, with end-to-end functional
//! verification against the IR golden model.

use apex::cgra::{
    generate_bitstream, gather_stats, place, route, verify_routed, Fabric, FabricConfig,
    PlaceOptions, RouteOptions,
};
use apex::core::{
    baseline_variant, evaluate_app, pe1_variant, specialized_variant, EvalOptions,
    SubgraphSelection,
};
use apex::ir::{evaluate as ir_eval, Op, Value};
use apex::map::map_application;
use apex::merge::MergeOptions;
use apex::mining::MinerConfig;
use apex::pipeline::{pipeline_application, AppPipelineOptions};
use apex::tech::TechModel;
use std::collections::BTreeSet;

/// Deterministic xorshift for test vectors.
fn rng(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

#[test]
fn specialized_cgra_streams_bit_exact_results() {
    // the paper's step 3c: configure the array and simulate — here against
    // the IR interpreter as golden model, streaming inputs cycle by cycle
    let app = apex::apps::gaussian();
    let tech = TechModel::default();
    let variant = specialized_variant(
        "pe_spec_gaussian",
        &[&app],
        &[&app],
        &MinerConfig::default(),
        &SubgraphSelection::default(),
        &MergeOptions::default(),
        &tech,
        &BTreeSet::new(),
    )
    .unwrap();
    assert!(variant.synthesis.missing.is_empty());

    let design = map_application(&app.graph, &variant.spec.datapath, &variant.rules).unwrap();
    let pe_latency = 2;
    let (pipelined, report) = pipeline_application(
        &design.netlist,
        &variant.rules,
        pe_latency,
        &AppPipelineOptions::default(),
    )
    .unwrap();

    // stream 6 random frames' worth of window data
    let mut next = rng(0xFEED);
    let n_in = app.graph.primary_inputs().len();
    const CYCLES: usize = 6;
    let streams: Vec<Vec<u16>> = (0..n_in)
        .map(|_| (0..CYCLES).map(|_| next() as u16 & 0xFF).collect())
        .collect();
    let (outs, _) = pipelined
        .simulate(&variant.spec.datapath, &variant.rules, &streams, &[], pe_latency)
        .unwrap();

    for t in 0..CYCLES {
        let inputs: Vec<Value> = (0..n_in).map(|i| Value::Word(streams[i][t])).collect();
        let golden = ir_eval(&app.graph, &inputs);
        for (o, g) in outs.iter().zip(golden) {
            assert_eq!(
                o[t + report.latency as usize],
                g.word(),
                "pipelined fabric output must match the golden model at cycle {t}"
            );
        }
    }
}

#[test]
fn full_backend_produces_consistent_artifacts() {
    let app = apex::apps::resnet_layer();
    let variant = baseline_variant(&[&app]).unwrap();
    let design = map_application(&app.graph, &variant.spec.datapath, &variant.rules).unwrap();
    let fabric = Fabric::new(FabricConfig::default());
    let placement = place(&design.netlist, &fabric, &PlaceOptions::default()).unwrap();
    let routing = route(
        &design.netlist,
        &variant.rules,
        &fabric,
        &placement,
        &RouteOptions::default(),
    )
    .unwrap();
    verify_routed(&design.netlist, &variant.rules, &fabric, &placement, &routing).unwrap();
    let stats = gather_stats(&design.netlist, &fabric, &placement, &routing);
    assert_eq!(stats.pe_tiles, design.netlist.pe_count());

    let bs = generate_bitstream(
        &design.netlist,
        &variant.rules,
        &variant.spec.datapath,
        &fabric,
        &placement,
        &routing,
    );
    assert!(bs.total_bits > 1000, "a real design has a real bitstream");
}

#[test]
fn specialization_never_loses_functionality() {
    // every analyzed app still maps and matches golden on its PE Spec
    let tech = TechModel::default();
    for app in apex::apps::analyzed_apps() {
        let variant = specialized_variant(
            &format!("pe_spec_{}", app.info.name),
            &[&app],
            &[&app],
            &MinerConfig {
                max_patterns: 200,
                ..MinerConfig::default()
            },
            &SubgraphSelection::default(),
            &MergeOptions::default(),
            &tech,
            &BTreeSet::new(),
        )
        .unwrap();
        assert!(
            variant.synthesis.missing.is_empty(),
            "{}: {:?}",
            app.info.name,
            variant.synthesis.missing
        );
        let design =
            map_application(&app.graph, &variant.spec.datapath, &variant.rules).unwrap();

        let mut next = rng(app.info.name.len() as u64);
        let word_n = app
            .graph
            .node_ids()
            .filter(|&i| app.graph.op(i) == Op::Input)
            .count();
        let bit_n = app
            .graph
            .node_ids()
            .filter(|&i| app.graph.op(i) == Op::BitInput)
            .count();
        for _ in 0..3 {
            let words: Vec<u16> = (0..word_n).map(|_| next() as u16 & 0xFF).collect();
            let bits: Vec<bool> = (0..bit_n).map(|_| next() & 1 == 1).collect();
            let mut wi = words.iter();
            let mut bi = bits.iter();
            let golden_in: Vec<Value> = app
                .graph
                .primary_inputs()
                .iter()
                .map(|&pi| match app.graph.op(pi) {
                    Op::Input => Value::Word(*wi.next().unwrap()),
                    Op::BitInput => Value::Bit(*bi.next().unwrap()),
                    _ => unreachable!(),
                })
                .collect();
            let golden = ir_eval(&app.graph, &golden_in);
            let (got_w, got_b) = design
                .netlist
                .evaluate(&variant.spec.datapath, &variant.rules, &words, &bits)
                .unwrap();
            let mut gw = got_w.into_iter();
            let mut gb = got_b.into_iter();
            for (po, g) in app.graph.primary_outputs().iter().zip(golden) {
                match app.graph.op(*po) {
                    Op::Output => assert_eq!(gw.next().unwrap(), g.word(), "{}", app.info.name),
                    Op::BitOutput => assert_eq!(gb.next().unwrap(), g.bit(), "{}", app.info.name),
                    _ => unreachable!(),
                }
            }
        }
    }
}

#[test]
fn pe1_variant_drops_baseline_overhead() {
    let app = apex::apps::harris();
    let tech = TechModel::default();
    let base = baseline_variant(&[&app]).unwrap();
    let pe1 = pe1_variant("pe1_harris", &[&app], &[&app]).unwrap();
    let be = evaluate_app(&base, &app, &tech, &EvalOptions::default()).unwrap();
    let pe = evaluate_app(&pe1, &app, &tech, &EvalOptions::default()).unwrap();
    assert_eq!(be.pnr.pe_tiles, pe.pnr.pe_tiles, "same mapping, smaller PE");
    assert!(pe.pe_core_area < be.pe_core_area);
    assert!(pe.energy_per_cycle.pe < be.energy_per_cycle.pe);
}

#[test]
fn pipelined_evaluation_reports_fifos_for_deep_designs() {
    // camera has long reconvergent paths: post-pipelining must use
    // register-file FIFOs (Table 3's #RF column)
    let app = apex::apps::camera_pipeline();
    let tech = TechModel::default();
    let variant = baseline_variant(&[&app]).unwrap();
    let e = evaluate_app(
        &variant,
        &app,
        &tech,
        &EvalOptions {
            pipelined: true,
            ..EvalOptions::default()
        },
    )
    .unwrap();
    assert!(e.pipelining.latency > 0);
    assert!(
        e.pnr.rf_tiles > 0 || e.pnr.sb_regs > 0,
        "deep designs need balance registers: {:?}",
        e.pnr
    );
    // pipelining must recover most of the clock; long unregistered routes
    // keep the achieved period somewhat above the 1.1 ns target
    assert!(e.period_ns < 2.5 * tech.clock_period_ns, "{}", e.period_ns);
}
