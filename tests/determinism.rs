//! Determinism contract of the parallel sweep executor and the variant
//! cache:
//!
//! 1. `dse_evaluate_suite` / `dse_evaluate_grid` at any worker count are
//!    **bit-identical** to the serial run (results in input order, every
//!    float byte-for-byte equal — compared via full-precision `Debug`).
//! 2. A warm [`VariantCache`] reproduces the *exact* variant the cold
//!    build produced: same rule set, same datapath hash, same encoded
//!    bytes.
//!
//! [`VariantCache`]: apex::core::VariantCache

use apex::apps::{analyzed_apps, unseen_apps, Application};
use apex::core::{
    baseline_variant, datapath_hash, dse_evaluate_app, dse_evaluate_grid, dse_evaluate_suite,
    encode_variant, fnv1a, run_checkpointed, specialized_variant, DseOptions, JobReport, PeVariant,
    SubgraphSelection, SweepJob, SweepJobResult, SweepJournal, VariantCache, JOURNAL_FORMAT,
};
use apex::fault::Provenance;
use apex::merge::MergeOptions;
use apex::mining::MinerConfig;
use apex::tech::TechModel;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Points the process-wide variant cache at a per-run scratch directory
/// before anything can initialize it (the shared cache reads the
/// environment once, lazily). Every test in this binary calls this first,
/// so no test leaks entries into the developer's real cache.
fn isolate_cache_dir() {
    static DIR: OnceLock<std::path::PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("apex-determinism-{}", std::process::id()));
        std::env::set_var("APEX_CACHE_DIR", &dir);
        dir
    });
}

fn nine_apps() -> Vec<Application> {
    let mut apps = analyzed_apps();
    apps.extend(unseen_apps());
    apps
}

/// Sweep options with a reduced annealing budget: determinism does not
/// depend on the move count, and the nine-app suite must stay fast in
/// debug builds.
fn fast_options(jobs: usize) -> DseOptions {
    let mut o = DseOptions::default();
    o.eval.place.moves = 1_000;
    o.jobs = jobs;
    o
}

fn outcome_fingerprint(outcomes: &[apex::core::AppDseOutcome]) -> Vec<String> {
    outcomes.iter().map(|o| format!("{o:?}")).collect()
}

#[test]
fn parallel_suite_is_bit_identical_to_serial_across_all_nine_apps() {
    isolate_cache_dir();
    let apps = nine_apps();
    let refs: Vec<&Application> = apps.iter().collect();
    let tech = TechModel::default();
    let variant = baseline_variant(&refs);

    let serial = dse_evaluate_suite(&variant, &refs, &tech, &fast_options(1));
    let parallel = dse_evaluate_suite(&variant, &refs, &tech, &fast_options(4));

    assert_eq!(serial.len(), refs.len());
    assert_eq!(parallel.len(), refs.len());
    let s = outcome_fingerprint(&serial);
    let p = outcome_fingerprint(&parallel);
    for (app, (a, b)) in refs.iter().zip(s.iter().zip(&p)) {
        assert_eq!(a, b, "{}: parallel outcome differs from serial", app.info.name);
    }
}

#[test]
fn parallel_grid_matches_serial_in_row_and_column_order() {
    isolate_cache_dir();
    let apps = analyzed_apps();
    let refs: Vec<&Application> = apps.iter().take(3).collect();
    let tech = TechModel::default();
    let base = baseline_variant(&refs);
    let spec = specialized_variant(
        "pe_grid_test",
        &refs,
        &refs,
        &MinerConfig::default(),
        &SubgraphSelection::default(),
        &MergeOptions::default(),
        &tech,
        &BTreeSet::new(),
    );
    let variants = [base, spec];

    let serial = dse_evaluate_grid(&variants, &refs, &tech, &fast_options(1));
    let parallel = dse_evaluate_grid(&variants, &refs, &tech, &fast_options(4));

    assert_eq!(serial.len(), variants.len());
    assert_eq!(parallel.len(), variants.len());
    for (v, (srow, prow)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(srow.len(), refs.len(), "row {v} covers every app");
        assert_eq!(
            outcome_fingerprint(srow),
            outcome_fingerprint(prow),
            "grid row {v} differs between serial and parallel"
        );
    }
}

// Under `fault-injection` the variant constructors bypass the cache on
// purpose (a stored variant would mask armed failpoints), so the warm-hit
// contract only holds in the default configuration.
#[cfg(not(feature = "fault-injection"))]
#[test]
fn warm_cache_reproduces_the_exact_variant() {
    isolate_cache_dir();
    let apps = analyzed_apps();
    let refs: Vec<&Application> = apps.iter().take(2).collect();
    let tech = TechModel::default();
    let build = || -> PeVariant {
        specialized_variant(
            "pe_cache_test",
            &refs,
            &refs,
            &MinerConfig::default(),
            &SubgraphSelection::default(),
            &MergeOptions::default(),
            &tech,
            &BTreeSet::new(),
        )
        .expect("variant builds")
    };

    let cache = VariantCache::shared();
    assert!(cache.is_enabled(), "APEX_CACHE_DIR points at the scratch dir");

    let cold = build();
    let hits_before = cache.hits();
    let warm = build();
    assert!(
        cache.hits() > hits_before,
        "second build must be served from the cache ({} hits before, {} after)",
        hits_before,
        cache.hits()
    );

    // same rule set ...
    let cold_rules: Vec<&str> = cold.rules.rules.iter().map(|r| r.name.as_str()).collect();
    let warm_rules: Vec<&str> = warm.rules.rules.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(cold_rules, warm_rules, "rule sets diverge");
    // ... same hardware ...
    assert_eq!(
        datapath_hash(&cold),
        datapath_hash(&warm),
        "datapath hashes diverge"
    );
    // ... and byte-identical everything (spec, sources, synthesis report,
    // degradations) under the canonical encoding
    assert_eq!(encode_variant(&cold), encode_variant(&warm));
}

/// Kill-and-resume determinism of the checkpoint journal over real sweep
/// payloads: an interrupted `run_checkpointed` plus a `--resume`-style
/// second pass must produce byte-for-byte the output of an uninterrupted
/// run, re-executing only the jobs the interrupt left unfinished.
#[test]
fn interrupted_checkpointed_sweep_resumes_byte_identically() {
    isolate_cache_dir();
    let dir = std::env::temp_dir().join(format!("apex-journal-det-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let apps = analyzed_apps();
    let refs: Vec<&Application> = apps.iter().take(3).collect();
    let tech = TechModel::default();
    let variant = baseline_variant(&refs).expect("baseline builds");
    let opts = fast_options(1);
    let jobs: Vec<SweepJob> = refs
        .iter()
        .map(|app| SweepJob {
            key: fnv1a(&[JOURNAL_FORMAT, "det-test", &app.info.name]),
            label: app.info.name.clone(),
        })
        .collect();
    let run_job = |i: usize| -> Result<JobReport, apex::fault::ApexError> {
        let outcome = dse_evaluate_app(&variant, refs[i], &tech, &opts);
        Ok(JobReport {
            payload: format!("{outcome:?}\n"),
            provenance: Provenance::Completed,
            degradations: outcome.degradation_summary(),
        })
    };
    let payloads = |run: &apex::core::SweepRun| -> Vec<String> {
        run.results
            .iter()
            .map(|r| match r {
                SweepJobResult::Done { report, .. } => report.payload.clone(),
                SweepJobResult::NotRun => "<not run>".to_owned(),
            })
            .collect()
    };

    // reference: uninterrupted run
    let reference = run_checkpointed(
        &SweepJournal::at(dir.join("reference.jsonl")),
        &jobs,
        false,
        None,
        run_job,
    )
    .expect("reference sweep runs");
    assert!(!reference.interrupted);
    assert_eq!(reference.executed, jobs.len());

    // interrupted run: the flag goes up while job 0 executes, so the
    // sweep journals job 0 and stops before dispatching job 1
    let journal = SweepJournal::at(dir.join("interrupted.jsonl"));
    let flag = Arc::new(AtomicBool::new(false));
    let partial = run_checkpointed(&journal, &jobs, false, Some(&flag), |i| {
        let report = run_job(i)?;
        flag.store(true, Ordering::SeqCst);
        Ok(report)
    })
    .expect("interrupted sweep still reports");
    assert!(partial.interrupted, "flag must stop the sweep");
    assert_eq!(partial.executed, 1, "only job 0 ran before the interrupt");
    assert!(
        matches!(partial.results[1], SweepJobResult::NotRun),
        "job 1 was never dispatched"
    );

    // resume: replays job 0 from the journal, executes only the rest
    let resumed = run_checkpointed(&journal, &jobs, true, None, run_job)
        .expect("resumed sweep runs to completion");
    assert!(!resumed.interrupted);
    assert_eq!(resumed.replayed, 1, "job 0 comes from the journal");
    assert_eq!(resumed.executed, jobs.len() - 1, "only the remainder re-runs");
    assert_eq!(
        payloads(&resumed),
        payloads(&reference),
        "resumed output must be byte-identical to the uninterrupted run"
    );
    assert!(
        matches!(resumed.results[0], SweepJobResult::Done { resumed: true, .. }),
        "job 0 is marked as served from the journal"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_key_separates_selection_policies() {
    isolate_cache_dir();
    let apps = analyzed_apps();
    let refs: Vec<&Application> = apps.iter().take(1).collect();
    let k1 = apex::core::variant_cache_key(
        "specialized",
        "pe_x",
        &refs,
        &refs,
        Some(&MinerConfig::default()),
        Some(&SubgraphSelection::default()),
        Some(&MergeOptions::default()),
        Some(&TechModel::default()),
        &BTreeSet::new(),
    );
    let deeper = SubgraphSelection {
        per_app: 5,
        ..SubgraphSelection::default()
    };
    let k2 = apex::core::variant_cache_key(
        "specialized",
        "pe_x",
        &refs,
        &refs,
        Some(&MinerConfig::default()),
        Some(&deeper),
        Some(&MergeOptions::default()),
        Some(&TechModel::default()),
        &BTreeSet::new(),
    );
    assert_ne!(k1, k2, "selection policy must be part of the key");
}
