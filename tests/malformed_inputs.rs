//! Robustness: the `apex` CLI must reject malformed graph files with a
//! clean diagnostic and a nonzero exit code — never a panic and never a
//! silent success.

use std::io::Write;
use std::process::Command;

fn run_dse_file(contents: &str) -> (i32, String) {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "apex-malformed-{}-{:x}.g",
        std::process::id(),
        contents.len() as u64 ^ (contents.as_bytes().first().copied().unwrap_or(0) as u64) << 32
    ));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    drop(f);
    let out = Command::new(env!("CARGO_BIN_EXE_apex"))
        .arg("dse-file")
        .arg(&path)
        .output()
        .expect("apex binary runs");
    let _ = std::fs::remove_file(&path);
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    (out.status.code().unwrap_or(-1), stderr)
}

fn assert_clean_failure(case: &str, contents: &str, expect_in_stderr: &str) {
    let (code, stderr) = run_dse_file(contents);
    assert_ne!(code, 0, "{case}: must exit nonzero\nstderr: {stderr}");
    assert!(
        !stderr.contains("panicked"),
        "{case}: must not panic\nstderr: {stderr}"
    );
    assert!(
        stderr.contains(expect_in_stderr),
        "{case}: diagnostic should mention '{expect_in_stderr}'\nstderr: {stderr}"
    );
}

#[test]
fn unknown_operation_is_a_clean_parse_error() {
    assert_clean_failure(
        "unknown op",
        "graph t\nn0 = input\nn1 = frobnicate n0\nn2 = output n1\n",
        "frobnicate",
    );
}

#[test]
fn forward_reference_is_rejected_not_looped() {
    // a cycle in the sequential-id text format can only appear as a
    // forward/self reference; it must be a diagnostic, not a hang or panic
    assert_clean_failure(
        "forward reference",
        "graph t\nn0 = input\nn1 = add n2 n0\nn2 = add n1 n0\nn3 = output n2\n",
        "error: parse",
    );
}

#[test]
fn truncated_file_is_a_clean_parse_error() {
    assert_clean_failure(
        "truncated mid-line",
        "graph t\nn0 = input\nn1 = ad",
        "error: parse",
    );
}

#[test]
fn type_mismatch_reports_the_line() {
    assert_clean_failure(
        "word into bit port",
        "graph t\nn0 = input\nn1 = bitoutput n0\nn2 = output n0\n",
        "line 3",
    );
}

#[test]
fn empty_file_is_a_clean_parse_error() {
    assert_clean_failure("empty file", "", "empty");
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_apex"))
        .arg("dse-file")
        .arg("/nonexistent/apex-no-such-file.g")
        .output()
        .expect("apex binary runs");
    assert_ne!(out.status.code().unwrap_or(-1), 0);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
}

#[test]
fn unknown_subcommand_exits_nonzero_with_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_apex"))
        .arg("frobnicate")
        .output()
        .expect("apex binary runs");
    assert_ne!(out.status.code().unwrap_or(-1), 0, "unknown subcommand must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.to_lowercase().contains("usage"),
        "stderr should carry usage: {stderr}"
    );
}
