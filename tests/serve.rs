//! Integration tests for the `apex serve` daemon: protocol round trips,
//! admission control and backpressure, slow-client defense, and the
//! drain → resume → byte-identical-results contract.
//!
//! All tests run the real server over real sockets (ephemeral ports) but
//! inject fast mock [`JobRunner`]s, so the robustness envelope is
//! exercised without paying for real DSE. The `drain` op stands in for
//! SIGTERM (same code path, minus the process-global signal flag, which
//! must stay untouched in a multi-test process); the signal path itself
//! is covered by the CI daemon smoke job.

use apex::core::{JobReport, SweepJournal};
use apex::fault::Provenance;
use apex::serve::{client, proto, JobRunner, JobSpec, RunSummary, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A deterministic runner: payload is a pure function of the submission,
/// with a configurable per-job delay that honors the drain flag (like
/// the real pipeline's budget meters).
struct MockRunner {
    delay: Duration,
    runs: Arc<AtomicUsize>,
}

impl MockRunner {
    fn new(delay: Duration) -> (Self, Arc<AtomicUsize>) {
        let runs = Arc::new(AtomicUsize::new(0));
        (
            MockRunner {
                delay,
                runs: Arc::clone(&runs),
            },
            runs,
        )
    }
}

impl JobRunner for MockRunner {
    fn run(&self, spec: &JobSpec) -> Result<JobReport, apex::fault::ApexError> {
        let started = Instant::now();
        while started.elapsed() < self.delay {
            if spec.cancel.load(Ordering::Relaxed) {
                return Ok(JobReport {
                    payload: String::new(),
                    provenance: Provenance::Cancelled,
                    degradations: "cancelled".to_owned(),
                });
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        self.runs.fetch_add(1, Ordering::Relaxed);
        Ok(JobReport {
            payload: format!("tenant={} graph={}", spec.tenant, spec.graph.trim()),
            provenance: Provenance::Completed,
            degradations: "-".to_owned(),
        })
    }
}

/// A runner that blocks until drained (for backpressure tests).
struct StuckRunner;

impl JobRunner for StuckRunner {
    fn run(&self, spec: &JobSpec) -> Result<JobReport, apex::fault::ApexError> {
        while !spec.cancel.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(2));
        }
        Ok(JobReport {
            payload: String::new(),
            provenance: Provenance::Cancelled,
            degradations: "cancelled".to_owned(),
        })
    }
}

fn scratch_journal(tag: &str) -> (SweepJournal, std::path::PathBuf) {
    let p = std::env::temp_dir().join(format!(
        "apex-serve-test-{tag}-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    (SweepJournal::at(&p), p)
}

/// Binds a server on an ephemeral port and runs it on a background
/// thread; returns the address and the running thread.
fn start<R: JobRunner>(
    config: ServeConfig,
    journal: SweepJournal,
    runner: R,
) -> (String, std::thread::JoinHandle<RunSummary>) {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..config
    };
    let server = Server::bind(config, journal, runner).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn req(addr: &str, line: &str) -> proto::Fields {
    client::request(addr, line, Duration::from_secs(5)).expect("request")
}

fn submit_line(tenant: &str, graph: &str) -> String {
    let mut f = proto::Fields::new();
    f.insert("op".to_owned(), "submit".to_owned());
    f.insert("graph".to_owned(), graph.to_owned());
    if !tenant.is_empty() {
        f.insert("tenant".to_owned(), tenant.to_owned());
    }
    proto::encode(&f)
}

fn drain(addr: &str) {
    let resp = req(addr, "{\"op\":\"drain\"}");
    assert_eq!(resp.get("ok").map(String::as_str), Some("draining"));
}

#[test]
fn ping_submit_status_result_round_trip() {
    let (journal, _path) = scratch_journal("roundtrip");
    let (runner, _) = MockRunner::new(Duration::from_millis(10));
    let (addr, handle) = start(ServeConfig::default(), journal, runner);

    let pong = req(&addr, "{\"op\":\"ping\"}");
    assert_eq!(pong.get("ok").map(String::as_str), Some("pong"));
    assert_eq!(pong.get("draining").map(String::as_str), Some("false"));

    let result = client::submit_and_wait(&addr, "acme", "g job-a\n", None, Duration::from_secs(10))
        .expect("submit");
    assert_eq!(result.get("ok").map(String::as_str), Some("result"));
    assert_eq!(
        result.get("payload").map(String::as_str),
        Some("tenant=acme graph=g job-a")
    );
    assert_eq!(
        result.get("provenance").map(String::as_str),
        Some(Provenance::Completed.marker())
    );

    // resubmitting concluded work is an idempotent hit, and its status
    // polls as done
    let again = req(&addr, &submit_line("acme", "g job-a\n"));
    assert_eq!(again.get("ok").map(String::as_str), Some("accepted"));
    assert_eq!(again.get("state").map(String::as_str), Some("done"));

    // unknown jobs are a structured error
    let missing = req(&addr, "{\"job\":\"00000000000000aa\",\"op\":\"status\"}");
    assert_eq!(missing.get("err").map(String::as_str), Some("unknown_job"));

    drain(&addr);
    let summary = handle.join().expect("server thread");
    assert_eq!(summary.unfinished, 0);
    assert_eq!(summary.concluded, 1);
}

#[test]
fn backpressure_sheds_with_retry_hint_instead_of_queueing() {
    let (journal, _path) = scratch_journal("shed");
    let config = ServeConfig {
        workers: 1,
        queue_limit: 2,
        retry_after: Duration::from_millis(123),
        ..ServeConfig::default()
    };
    let (addr, handle) = start(config, journal, StuckRunner);

    // first job occupies the worker; the admission bound is over *queued*
    // jobs, so give the dispatcher a moment to hand it to the pool
    let first = req(&addr, &submit_line("t", "g job-0\n"));
    assert_eq!(first.get("ok").map(String::as_str), Some("accepted"));
    let picked_up = (0..100).any(|_| {
        std::thread::sleep(Duration::from_millis(10));
        req(&addr, "{\"op\":\"ping\"}")
            .get("running")
            .map(String::as_str)
            == Some("1")
    });
    assert!(picked_up, "first job never reached the worker");

    let mut accepted = 1;
    let mut shed = 0;
    for i in 1..8 {
        let resp = req(&addr, &submit_line("t", &format!("g job-{i}\n")));
        if resp.get("ok").is_some() {
            accepted += 1;
        } else {
            assert_eq!(resp.get("err").map(String::as_str), Some("overloaded"));
            assert_eq!(resp.get("retry_after_ms").map(String::as_str), Some("123"));
            shed += 1;
        }
    }
    assert!(accepted >= 3, "the queue admits up to its limit");
    assert!(shed >= 4, "past the limit the daemon sheds, it never queues unboundedly");

    let stats = req(&addr, "{\"op\":\"stats\"}");
    assert_eq!(stats.get("shed").map(|s| s.as_str()), Some(format!("{shed}").as_str()));

    drain(&addr);
    let summary = handle.join().expect("server thread");
    assert_eq!(summary.shed, shed as u64);
    assert!(summary.unfinished > 0, "stuck jobs drain as unfinished");
}

#[test]
fn idle_and_trickling_clients_are_disconnected() {
    let (journal, _path) = scratch_journal("idle");
    let config = ServeConfig {
        idle_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let (runner, _) = MockRunner::new(Duration::from_millis(1));
    let (addr, handle) = start(config, journal, runner);

    // a client that connects and sends nothing gets a structured
    // disconnect within the idle timeout
    let started = Instant::now();
    let stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut lines = BufReader::new(stream);
    let mut line = String::new();
    lines.read_line(&mut line).expect("server says goodbye");
    assert!(line.contains("idle_timeout"), "got: {line}");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "disconnect must come from the idle timeout, not test patience"
    );
    let mut eof_probe = String::new();
    assert_eq!(lines.read_line(&mut eof_probe).expect("eof"), 0);

    // a trickling client — one byte per interval, so every socket read
    // succeeds but the line never completes — must hit the per-line
    // deadline, not hold the connection for the length of the payload
    let started = Instant::now();
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let payload = b"{\"op\":\"ping\"}"; // never newline-terminated in time
    let mut disconnected = false;
    for b in payload.iter().cycle().take(100) {
        if stream.write_all(std::slice::from_ref(b)).is_err() {
            disconnected = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
        let mut probe = [0u8; 64];
        match stream.peek(&mut probe) {
            Ok(n) if n > 0 => {
                let said = String::from_utf8_lossy(&probe[..n]).into_owned();
                assert!(said.contains("idle_timeout"), "got: {said}");
                disconnected = true;
                break;
            }
            Ok(_) | Err(_) => {}
        }
    }
    assert!(disconnected, "trickling client was never disconnected");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "trickle disconnect must come from the per-line deadline"
    );

    // and the daemon is still fully alive for well-behaved clients
    let pong = req(&addr, "{\"op\":\"ping\"}");
    assert_eq!(pong.get("ok").map(String::as_str), Some("pong"));

    drain(&addr);
    let summary = handle.join().expect("server thread");
    assert!(summary.timeouts >= 1);
}

#[test]
fn oversized_lines_and_garbage_are_rejected_structurally() {
    let (journal, _path) = scratch_journal("badinput");
    let config = ServeConfig {
        line_limit: 1024,
        ..ServeConfig::default()
    };
    let (runner, _) = MockRunner::new(Duration::from_millis(1));
    let (addr, handle) = start(config, journal, runner);

    // oversized line: structured error, then disconnect
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let big = vec![b'x'; 8192];
    stream.write_all(&big).expect("write");
    let mut lines = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    lines.read_line(&mut line).expect("response");
    assert!(line.contains("line_too_long"), "got: {line}");

    // garbage is a bad_request but keeps the connection usable
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream.write_all(b"what is a json\n").expect("write");
    let mut lines = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    lines.read_line(&mut line).expect("response");
    assert!(line.contains("bad_request"), "got: {line}");
    stream.write_all(b"{\"op\":\"ping\"}\n").expect("write");
    let mut line2 = String::new();
    lines.read_line(&mut line2).expect("response");
    assert!(line2.contains("pong"), "got: {line2}");

    drain(&addr);
    let summary = handle.join().expect("server thread");
    assert_eq!(summary.unfinished, 0);
}

/// The drain-semantics soak test: N concurrent sweeps, drain mid-flight,
/// restart with resume, and the final results are byte-identical to an
/// uninterrupted run — with concluded jobs served from the journal, not
/// re-run.
#[test]
fn drain_midflight_then_resume_is_byte_identical() {
    let n_jobs = 6usize;
    let graphs: Vec<String> = (0..n_jobs).map(|i| format!("g soak-{i}\n")).collect();

    // reference: an uninterrupted run of the same submissions
    let (ref_journal, _ref_path) = scratch_journal("soak-ref");
    let (runner, _) = MockRunner::new(Duration::from_millis(30));
    let config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(config.clone(), ref_journal, runner);
    let mut reference = Vec::new();
    for g in &graphs {
        let r = client::submit_and_wait(&addr, "soak", g, None, Duration::from_secs(20))
            .expect("reference run");
        reference.push(r.get("payload").cloned().expect("payload"));
    }
    drain(&addr);
    handle.join().expect("server thread");

    // interrupted run: same submissions, drain while jobs are in flight
    let (journal, path) = scratch_journal("soak");
    let (runner, runs_before) = MockRunner::new(Duration::from_millis(150));
    let (addr, handle) = start(config.clone(), journal, runner);
    for g in &graphs {
        let resp = req(&addr, &submit_line("soak", g));
        assert_eq!(resp.get("ok").map(String::as_str), Some("accepted"));
    }
    std::thread::sleep(Duration::from_millis(200)); // let a few conclude
    drain(&addr);
    let summary = handle.join().expect("server thread");
    let finished_early = runs_before.load(Ordering::Relaxed);
    assert!(
        summary.unfinished > 0,
        "the drain must have caught jobs mid-flight for this test to bite"
    );
    assert_eq!(summary.concluded as usize + summary.unfinished, n_jobs);

    // restart with --resume on the same journal
    let (runner, runs_after) = MockRunner::new(Duration::from_millis(10));
    let resume_config = ServeConfig {
        resume: true,
        ..config
    };
    let (addr, handle) = start(resume_config, SweepJournal::at(&path), runner);
    let mut resumed = Vec::new();
    for g in &graphs {
        let r = client::submit_and_wait(&addr, "soak", g, None, Duration::from_secs(20))
            .expect("resumed run");
        resumed.push(r.get("payload").cloned().expect("payload"));
    }
    drain(&addr);
    let summary = handle.join().expect("server thread");
    assert_eq!(summary.unfinished, 0, "everything concluded after resume");

    assert_eq!(
        resumed, reference,
        "resumed results must be byte-identical to an uninterrupted run"
    );
    assert_eq!(
        finished_early + runs_after.load(Ordering::Relaxed),
        n_jobs,
        "jobs concluded before the drain are served from the journal, not re-run"
    );
}

/// The client's capped, seeded-jitter admission retry: a submission shed
/// under backpressure keeps retrying on the server's `retry_after_ms`
/// hint and is admitted once capacity frees up — the `apex submit` UX
/// for a transiently busy daemon.
#[test]
fn submit_retries_through_backpressure_then_succeeds() {
    let (journal, _path) = scratch_journal("retry-ok");
    let config = ServeConfig {
        workers: 1,
        queue_limit: 1,
        retry_after: Duration::from_millis(50),
        ..ServeConfig::default()
    };
    let (runner, _) = MockRunner::new(Duration::from_millis(300));
    let (addr, handle) = start(config, journal, runner);

    // occupy the worker, then the one queue slot
    let first = req(&addr, &submit_line("t", "g slow-0\n"));
    assert_eq!(first.get("ok").map(String::as_str), Some("accepted"));
    let picked_up = (0..100).any(|_| {
        std::thread::sleep(Duration::from_millis(10));
        req(&addr, "{\"op\":\"ping\"}")
            .get("running")
            .map(String::as_str)
            == Some("1")
    });
    assert!(picked_up, "first job never reached the worker");
    let second = req(&addr, &submit_line("t", "g slow-1\n"));
    assert_eq!(second.get("ok").map(String::as_str), Some("accepted"));

    // a direct submit right now is shed — proving the third submission
    // below really has to retry its way in
    let probe = req(&addr, &submit_line("t", "g probe\n"));
    assert_eq!(probe.get("err").map(String::as_str), Some("overloaded"));

    // the retrying client outlasts the backpressure window: within 8
    // attempts at ~50ms hints the 300ms jobs clear and it is admitted
    let result = client::submit_and_wait(&addr, "t", "g wanted\n", None, Duration::from_secs(20))
        .expect("shed submission is admitted after retries");
    assert_eq!(result.get("ok").map(String::as_str), Some("result"));
    assert_eq!(
        result.get("payload").map(String::as_str),
        Some("tenant=t graph=g wanted")
    );

    drain(&addr);
    let summary = handle.join().expect("server thread");
    assert!(summary.shed >= 1, "the retry path must have seen real sheds");
}

/// When the server never frees capacity, the client gives up after
/// [`client::MAX_ADMISSION_ATTEMPTS`] instead of hammering forever.
#[test]
fn submit_retries_are_capped_when_server_stays_overloaded() {
    let (journal, _path) = scratch_journal("retry-cap");
    let config = ServeConfig {
        workers: 1,
        queue_limit: 1,
        retry_after: Duration::from_millis(10),
        ..ServeConfig::default()
    };
    let (addr, handle) = start(config, journal, StuckRunner);

    let first = req(&addr, &submit_line("t", "g stuck-0\n"));
    assert_eq!(first.get("ok").map(String::as_str), Some("accepted"));
    let picked_up = (0..100).any(|_| {
        std::thread::sleep(Duration::from_millis(10));
        req(&addr, "{\"op\":\"ping\"}")
            .get("running")
            .map(String::as_str)
            == Some("1")
    });
    assert!(picked_up, "first job never reached the worker");
    let second = req(&addr, &submit_line("t", "g stuck-1\n"));
    assert_eq!(second.get("ok").map(String::as_str), Some("accepted"));

    let err = client::submit_and_wait(&addr, "t", "g doomed\n", None, Duration::from_secs(20))
        .expect_err("a permanently overloaded server exhausts the retry budget");
    let rendered = format!("{err}");
    assert!(
        rendered.contains("admission retries exhausted"),
        "got: {rendered}"
    );

    drain(&addr);
    let summary = handle.join().expect("server thread");
    assert_eq!(
        summary.shed,
        u64::from(client::MAX_ADMISSION_ATTEMPTS),
        "every capped attempt is a counted shed"
    );
}

#[test]
fn draining_daemon_refuses_new_admissions() {
    let (journal, _path) = scratch_journal("refuse");
    let (runner, _) = MockRunner::new(Duration::from_millis(1));
    let (addr, handle) = start(ServeConfig::default(), journal, runner);
    // one connection for both requests: the established connection keeps
    // serving during drain, but its admissions are refused
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut lines = BufReader::new(stream.try_clone().expect("clone"));
    stream.write_all(b"{\"op\":\"drain\"}\n").expect("write");
    let mut line = String::new();
    lines.read_line(&mut line).expect("response");
    assert!(line.contains("draining"), "got: {line}");
    stream
        .write_all(format!("{}\n", submit_line("t", "g late\n")).as_bytes())
        .expect("write");
    let mut line2 = String::new();
    lines.read_line(&mut line2).expect("response");
    assert!(line2.contains("\"err\":\"draining\""), "got: {line2}");
    handle.join().expect("server thread");
}
