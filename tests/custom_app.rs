//! A user-authored application, built with the expression frontend,
//! serialized through the text format, and taken through the complete
//! DSE flow — the "downstream adopter" path.

use apex::apps::{AppInfo, Application, Domain};
use apex::core::{baseline_variant, most_specialized_variant, post_mapping_estimate};
use apex::ir::{evaluate, from_text, to_text, ExprGraph, Value};
use apex::merge::MergeOptions;
use apex::mining::MinerConfig;
use apex::tech::TechModel;

/// A small edge-detector: |sobel_x| + |sobel_y| with thresholding,
/// unrolled 4 ways.
fn build_edge_detector() -> apex::ir::Graph {
    let mut b = ExprGraph::new("edge_detect");
    for _ in 0..4 {
        // 3x3 window
        let w: Vec<_> = (0..9).map(|_| b.input()).collect();
        let two = b.lit(2);
        let gx = (&w[2] - &w[0]) + (&w[5] - &w[3]) * two.clone() + (&w[8] - &w[6]);
        let gy = (&w[6] - &w[0]) + (&w[7] - &w[1]) * two.clone() + (&w[8] - &w[2]);
        let mag = gx.abs() + gy.abs();
        let th = b.lit(128);
        let one = b.lit(255);
        let zero = b.lit(0);
        zero.select(&one, &mag.gt(&th)).output();
    }
    b.finish()
}

#[test]
fn custom_expression_app_flows_end_to_end() {
    let graph = build_edge_detector();
    assert!(graph.try_validate().is_ok());

    // semantic sanity: flat window → no edge; strong vertical edge → 255
    let flat: Vec<Value> = vec![Value::Word(100); graph.primary_inputs().len()];
    let out = evaluate(&graph, &flat);
    assert!(out.iter().all(|v| v.word() == 0));
    let mut edge_in = Vec::new();
    for _ in 0..4 {
        // columns: 0, 0, 200
        for row in 0..3 {
            let _ = row;
            edge_in.extend([Value::Word(0), Value::Word(0), Value::Word(200)]);
        }
    }
    let out = evaluate(&graph, &edge_in);
    assert!(out.iter().all(|v| v.word() == 255), "{out:?}");

    // text round trip
    let text = to_text(&graph);
    let parsed = from_text(&text).expect("parses back");
    assert_eq!(parsed, graph);

    // full DSE
    let app = Application::new(
        AppInfo {
            name: "edge_detect".into(),
            domain: Domain::ImageProcessing,
            description: "custom Sobel-style edge detector".into(),
            mem_tiles: 10,
            io_tiles: 4,
            unroll: 4,
            output_pixels: 1 << 20,
        },
        parsed,
    );
    let tech = TechModel::default();
    let base = baseline_variant(&[&app]).unwrap();
    let spec = most_specialized_variant(
        &app,
        &MinerConfig::default(),
        &MergeOptions::default(),
        &tech,
        3,
    )
    .unwrap();
    assert!(spec.synthesis.missing.is_empty());
    let (bn, ba, _) = post_mapping_estimate(&base, &app, &tech).unwrap();
    let (sn, sa, _) = post_mapping_estimate(&spec, &app, &tech).unwrap();
    assert!(sn <= bn, "specialization never needs more PEs: {sn} vs {bn}");
    assert!(
        sa < ba,
        "specialization must save PE area: {sa:.0} vs {ba:.0}"
    );
}
