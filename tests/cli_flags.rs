//! CLI contract tests for the sweep-executor flags and diagnostics:
//! `--jobs` validation, experiment-id validation in `apex report`,
//! unknown-application handling, and the crash-safe-sweep contract
//! (interrupted sweeps exit 3 and `--resume` reproduces the full run
//! byte-for-byte) — all must exit with the documented code, never panic,
//! never silently ignore the request.

use std::path::PathBuf;
use std::process::Command;

fn apex(args: &[&str]) -> (i32, String) {
    let (code, _stdout, stderr) = apex_env(args, &[]);
    (code, stderr)
}

/// Runs the binary with extra environment variables and captures stdout
/// too (the byte-diffable sweep output lives on stdout; diagnostics and
/// the cache footer live on stderr).
fn apex_env(args: &[&str], envs: &[(&str, &str)]) -> (i32, String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_apex"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("apex binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Per-test scratch directory so journals and caches never leak between
/// tests or into the developer's workspace.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apex-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn report_rejects_unknown_experiment_id() {
    // the pre-parallel CLI silently skipped unknown ids and printed
    // nothing — a typo looked like an empty (successful) report
    let (code, stderr) = apex(&["report", "fig99"]);
    assert_ne!(code, 0, "unknown experiment id must fail\nstderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
    assert!(
        stderr.contains("unknown experiment 'fig99'"),
        "diagnostic names the id: {stderr}"
    );
    assert!(
        stderr.contains("table2"),
        "diagnostic lists the known ids: {stderr}"
    );
}

#[test]
fn jobs_flag_rejects_zero_and_garbage() {
    for bad in ["0", "many", "-3"] {
        let (code, stderr) = apex(&["report", "--jobs", bad, "table1"]);
        assert_ne!(code, 0, "--jobs {bad} must fail\nstderr: {stderr}");
        assert!(
            stderr.contains("--jobs expects a positive integer"),
            "--jobs {bad}: {stderr}"
        );
    }
    // trailing --jobs with no value
    let (code, stderr) = apex(&["report", "table1", "--jobs"]);
    assert_ne!(code, 0, "dangling --jobs must fail\nstderr: {stderr}");
}

#[test]
fn jobs_flag_is_accepted_on_cheap_commands() {
    // `mine` exercises the pooled mining stage; --jobs 2 must parse and
    // not leak into the positional arguments
    let (code, stderr) = apex(&["mine", "gaussian", "--jobs", "2"]);
    assert_eq!(code, 0, "mine with --jobs should succeed\nstderr: {stderr}");
}

#[test]
fn help_documents_exit_codes() {
    let (code, _stdout, stderr) = apex_env(&["--help"], &[]);
    assert_eq!(code, 0, "--help succeeds\nstderr: {stderr}");
    assert!(stderr.contains("exit codes"), "help lists exit codes: {stderr}");
    assert!(
        stderr.contains("3  interrupted"),
        "help documents the interrupted-partial code: {stderr}"
    );
    assert!(stderr.contains("--resume"), "help documents --resume: {stderr}");
}

/// The full crash-safe-sweep round trip through the real binary:
/// a sweep interrupted mid-flight exits with the documented partial code
/// (3), flushes its journal, and a `--resume` rerun completes with stdout
/// byte-identical to an uninterrupted run.
#[test]
fn interrupted_report_exits_3_and_resume_is_byte_identical() {
    let dir = scratch("resume");
    let cache = dir.join("cache");
    let j_full = dir.join("journal-full");
    let j_part = dir.join("journal-part");
    let cache_s = cache.to_string_lossy().into_owned();
    let j_full_s = j_full.to_string_lossy().into_owned();
    let j_part_s = j_part.to_string_lossy().into_owned();
    let args = ["report", "table1", "fig10"];

    // uninterrupted reference run
    let (code, full_out, stderr) = apex_env(
        &args,
        &[("APEX_CACHE_DIR", &cache_s), ("APEX_JOURNAL_DIR", &j_full_s)],
    );
    assert_eq!(code, 0, "reference run succeeds\nstderr: {stderr}");
    assert!(!full_out.is_empty());

    // interrupted run: the deterministic hook raises the interrupt flag
    // after one executed job, exactly like a Ctrl-C between jobs
    let (code, part_out, stderr) = apex_env(
        &args,
        &[
            ("APEX_CACHE_DIR", &cache_s),
            ("APEX_JOURNAL_DIR", &j_part_s),
            ("APEX_INTERRUPT_AFTER", "1"),
        ],
    );
    assert_eq!(code, 3, "interrupted sweep exits 3\nstderr: {stderr}");
    assert!(
        part_out.contains("# partial report (partial): 1/2 job(s)"),
        "partial marker on stdout: {part_out}"
    );
    let journal_files: Vec<_> = std::fs::read_dir(&j_part)
        .expect("journal dir exists after interrupt")
        .collect();
    assert_eq!(journal_files.len(), 1, "one journal file was flushed");

    // resume: replays job 1 from the journal, runs job 2, byte-identical
    let (code, resumed_out, stderr) = apex_env(
        &["report", "table1", "fig10", "--resume"],
        &[("APEX_CACHE_DIR", &cache_s), ("APEX_JOURNAL_DIR", &j_part_s)],
    );
    assert_eq!(code, 0, "resumed run succeeds\nstderr: {stderr}");
    assert!(
        stderr.contains("resume: replaying 1/2"),
        "resume log names the replay count: {stderr}"
    );
    assert_eq!(
        resumed_out, full_out,
        "resumed stdout must be byte-identical to the uninterrupted run"
    );

    // resume with a completed journal replays everything
    let (code, again_out, stderr) = apex_env(
        &["report", "table1", "fig10", "--resume"],
        &[("APEX_CACHE_DIR", &cache_s), ("APEX_JOURNAL_DIR", &j_part_s)],
    );
    assert_eq!(code, 0, "second resume succeeds\nstderr: {stderr}");
    assert_eq!(again_out, full_out, "fully-replayed stdout is stable");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_application_exits_nonzero() {
    let (code, stderr) = apex(&["dse", "no-such-app"]);
    assert_ne!(code, 0, "unknown app must fail\nstderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
    assert!(
        stderr.contains("unknown application 'no-such-app'"),
        "diagnostic names the app: {stderr}"
    );
}
