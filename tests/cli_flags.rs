//! CLI contract tests for the sweep-executor flags and diagnostics:
//! `--jobs` validation, experiment-id validation in `apex report`, and
//! unknown-application handling — all must exit nonzero with a clean
//! diagnostic, never panic, never silently ignore the request.

use std::process::Command;

fn apex(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_apex"))
        .args(args)
        .output()
        .expect("apex binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    (out.status.code().unwrap_or(-1), stderr)
}

#[test]
fn report_rejects_unknown_experiment_id() {
    // the pre-parallel CLI silently skipped unknown ids and printed
    // nothing — a typo looked like an empty (successful) report
    let (code, stderr) = apex(&["report", "fig99"]);
    assert_ne!(code, 0, "unknown experiment id must fail\nstderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
    assert!(
        stderr.contains("unknown experiment 'fig99'"),
        "diagnostic names the id: {stderr}"
    );
    assert!(
        stderr.contains("table2"),
        "diagnostic lists the known ids: {stderr}"
    );
}

#[test]
fn jobs_flag_rejects_zero_and_garbage() {
    for bad in ["0", "many", "-3"] {
        let (code, stderr) = apex(&["report", "--jobs", bad, "table1"]);
        assert_ne!(code, 0, "--jobs {bad} must fail\nstderr: {stderr}");
        assert!(
            stderr.contains("--jobs expects a positive integer"),
            "--jobs {bad}: {stderr}"
        );
    }
    // trailing --jobs with no value
    let (code, stderr) = apex(&["report", "table1", "--jobs"]);
    assert_ne!(code, 0, "dangling --jobs must fail\nstderr: {stderr}");
}

#[test]
fn jobs_flag_is_accepted_on_cheap_commands() {
    // `mine` exercises the pooled mining stage; --jobs 2 must parse and
    // not leak into the positional arguments
    let (code, stderr) = apex(&["mine", "gaussian", "--jobs", "2"]);
    assert_eq!(code, 0, "mine with --jobs should succeed\nstderr: {stderr}");
}

#[test]
fn unknown_application_exits_nonzero() {
    let (code, stderr) = apex(&["dse", "no-such-app"]);
    assert_ne!(code, 0, "unknown app must fail\nstderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
    assert!(
        stderr.contains("unknown application 'no-such-app'"),
        "diagnostic names the app: {stderr}"
    );
}
