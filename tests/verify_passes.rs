//! Corruption battery for the `apex-verify` rule catalog.
//!
//! Each pipeline-stage pass must (a) accept the honest artifact the real
//! flow produces and (b) reject a seeded corruption with the documented
//! rule id — exercised end-to-end through the `apex` facade, the same
//! artifacts `apex verify` inspects. Randomized cases use the
//! deterministic proptest shim, so failures replay identically.

use apex::ir::{Graph, NodeId, Op};
use apex::verify as v;
use proptest::prelude::*;

/// Disassembles a graph into the raw rows accepted by
/// [`Graph::from_raw_parts`], the unchecked ingestion point corruption
/// tests build on.
fn rows(g: &Graph) -> Vec<(Op, Vec<NodeId>)> {
    g.iter().map(|(_, n)| (n.op(), n.inputs().to_vec())).collect()
}

fn has_rule(vs: &[v::Violation], rule: &str) -> bool {
    vs.iter().any(|x| x.rule == rule)
}

/// Node indices holding multi-input compute ops — the interesting
/// corruption sites for arity/SSA violations.
fn compute_sites(g: &Graph) -> Vec<usize> {
    g.iter()
        .filter(|(_, n)| n.op().is_compute() && !n.inputs().is_empty())
        .map(|(id, _)| id.index())
        .collect()
}

// ---------------------------------------------------------------- ir

#[test]
fn ir_accepts_every_benchmark_app() {
    for app in apex::apps::analyzed_apps()
        .into_iter()
        .chain(apex::apps::unseen_apps())
    {
        let vs = v::verify_graph(&app.graph);
        assert!(vs.is_empty(), "{}:\n{}", app.info.name, v::render(&vs));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ir_rejects_truncated_arity_anywhere(site in 0usize..10_000) {
        let g = apex::apps::gaussian().graph;
        let sites = compute_sites(&g);
        let idx = sites[site % sites.len()];
        let mut r = rows(&g);
        r[idx].1.pop();
        let vs = v::verify_graph(&Graph::from_raw_parts("arity", r));
        prop_assert!(has_rule(&vs, "IR-ARITY"), "{}", v::render(&vs));
    }

    #[test]
    fn ir_rejects_forward_reference_anywhere(site in 0usize..10_000) {
        let g = apex::apps::gaussian().graph;
        let sites = compute_sites(&g);
        let idx = sites[site % sites.len()];
        let mut r = rows(&g);
        let forward = NodeId((r.len() - 1) as u32);
        r[idx].1[0] = forward;
        let vs = v::verify_graph(&Graph::from_raw_parts("ssa", r));
        prop_assert!(has_rule(&vs, "IR-SSA"), "{}", v::render(&vs));
    }
}

#[test]
fn ir_rejects_type_mismatch_and_dead_node() {
    // Mux select port wants a bit; feed it a word
    let r = vec![
        (Op::Input, vec![]),
        (Op::Input, vec![]),
        (Op::Mux, vec![NodeId(0), NodeId(1), NodeId(0)]),
        (Op::Output, vec![NodeId(2)]),
    ];
    let vs = v::verify_graph(&Graph::from_raw_parts("ty", r));
    assert!(has_rule(&vs, "IR-TYPE"), "{}", v::render(&vs));

    // an Add that reaches no primary output
    let r = vec![
        (Op::Input, vec![]),
        (Op::Add, vec![NodeId(0), NodeId(0)]),
        (Op::Output, vec![NodeId(0)]),
    ];
    let vs = v::verify_graph(&Graph::from_raw_parts("dead", r));
    assert!(has_rule(&vs, "IR-DEAD"), "{}", v::render(&vs));
}

#[test]
fn ir_rejects_input_independent_output() {
    let r = vec![
        (Op::Input, vec![]),
        (Op::Const(7), vec![]),
        (Op::Output, vec![NodeId(1)]),
        (Op::Output, vec![NodeId(0)]),
    ];
    let vs = v::verify_graph(&Graph::from_raw_parts("const-out", r));
    assert!(has_rule(&vs, "IR-OUTPUT"), "{}", v::render(&vs));
}

// -------------------------------------------------------------- mine

#[test]
fn mine_accepts_honest_results_and_rejects_corruptions() {
    let app = apex::apps::gaussian();
    let mined = apex::mining::mine(&app.graph, &apex::mining::MinerConfig::default())
        .expect("mining gaussian succeeds");
    let vs = v::verify_mined(&app.graph, &mined.subgraphs);
    assert!(vs.is_empty(), "{}", v::render(&vs));

    // inflated MIS: claims more non-overlapping occurrences than exist
    let mut bad = mined.subgraphs.clone();
    bad[0].mis_size = bad[0].occurrences.len() + 7;
    let vs = v::verify_mined(&app.graph, &bad);
    assert!(has_rule(&vs, "MINE-MIS"), "{}", v::render(&vs));

    // support below the MIS bound is internally inconsistent
    let mut bad = mined.subgraphs.clone();
    bad[0].mni_support = 0;
    let vs = v::verify_mined(&app.graph, &bad);
    assert!(has_rule(&vs, "MINE-SUPPORT"), "{}", v::render(&vs));

    // an occurrence pointing at out-of-graph nodes
    let mut bad = mined.subgraphs.clone();
    let huge = NodeId(app.graph.len() as u32 + 100);
    for n in &mut bad[0].occurrences[0] {
        *n = huge;
    }
    let vs = v::verify_mined(&app.graph, &bad);
    assert!(has_rule(&vs, "MINE-OCC-SIZE"), "{}", v::render(&vs));

    // a representative that no longer realizes the pattern edges
    let mut bad = mined.subgraphs.clone();
    bad[0].representative.clear();
    let vs = v::verify_mined(&app.graph, &bad);
    assert!(has_rule(&vs, "MINE-REP"), "{}", v::render(&vs));
}

// ----------------------------------------------- merge / rewrite / pe

fn spec_variant() -> apex::core::PeVariant {
    let app = apex::apps::gaussian();
    apex::core::specialized_variant(
        "pe_verify_test",
        &[&app],
        &[&app],
        &apex::mining::MinerConfig::default(),
        &apex::core::SubgraphSelection::default(),
        &apex::merge::MergeOptions::default(),
        &apex::tech::TechModel::default(),
        &std::collections::BTreeSet::new(),
    )
    .expect("specialized variant builds")
}

#[test]
fn merge_rejects_swapped_inputs_and_duplicate_mux_legs() {
    let variant = spec_variant();
    let dp = &variant.spec.datapath;
    let vs = v::verify_datapath_with(dp, &variant.sources, 16);
    assert!(vs.is_empty(), "{}", v::render(&vs));

    // swapping a config's first two word inputs breaks the witness for
    // any order-sensitive source (gaussian's merged kernels are)
    let mut bad = dp.clone();
    let swapped = bad
        .configs
        .iter()
        .position(|c| c.word_input_map.len() >= 2)
        .expect("a multi-input config exists");
    bad.configs[swapped].word_input_map.swap(0, 1);
    let vs = v::verify_datapath_with(&bad, &variant.sources, 16);
    assert!(
        has_rule(&vs, "MERGE-WITNESS") || has_rule(&vs, "MERGE-CONFIG"),
        "{}",
        v::render(&vs)
    );

    // duplicated mux leg: same source listed twice on one port
    let mut bad = dp.clone();
    let node = bad
        .nodes
        .iter()
        .position(|n| n.port_candidates.iter().any(|c| !c.is_empty()))
        .expect("a fed port exists");
    let port = bad.nodes[node]
        .port_candidates
        .iter()
        .position(|c| !c.is_empty())
        .expect("port");
    let dup = bad.nodes[node].port_candidates[port][0];
    bad.nodes[node].port_candidates[port].push(dup);
    let vs = v::verify_datapath_with(&bad, &variant.sources, 0);
    assert!(has_rule(&vs, "MERGE-MUX"), "{}", v::render(&vs));
}

#[test]
fn rewrite_rejects_interface_and_equivalence_lies() {
    let variant = spec_variant();
    let dp = &variant.spec.datapath;
    let rules = &variant.rules.rules;
    let vs = v::verify_ruleset(dp, rules, 8);
    assert!(vs.is_empty(), "{}", v::render(&vs));

    // an extra claimed word input desynchronizes pattern and config
    let mut bad = rules.to_vec();
    bad[0].config.word_input_map.push(0);
    let vs = v::verify_ruleset(dp, &bad, 0);
    assert!(has_rule(&vs, "RULE-IFACE"), "{}", v::render(&vs));

    // flip an Add to a Sub inside one rule's pattern: the config still
    // computes the old pattern, so the rule now lies about its semantics
    let lie = rules
        .iter()
        .position(|r| r.pattern.iter().any(|(_, n)| n.op() == Op::Add))
        .expect("a rule with an Add exists");
    let mut bad = rules.to_vec();
    let flipped: Vec<(Op, Vec<NodeId>)> = bad[lie]
        .pattern
        .iter()
        .map(|(_, n)| {
            let op = if n.op() == Op::Add { Op::Sub } else { n.op() };
            (op, n.inputs().to_vec())
        })
        .collect();
    bad[lie].pattern = Graph::from_raw_parts(bad[lie].pattern.name(), flipped);
    let vs = v::verify_ruleset(dp, &bad, 32);
    assert!(has_rule(&vs, "RULE-EQUIV"), "{}", v::render(&vs));
}

#[test]
fn pe_rejects_malformed_pipelines() {
    let variant = spec_variant();
    let tech = apex::tech::TechModel::default();
    let mut spec = variant.spec.clone();
    apex::pipeline::auto_pipeline(&mut spec, &tech, &apex::pipeline::PePipelineOptions::default())
        .expect("pipelining succeeds");
    let vs = v::verify_pe(&spec);
    assert!(vs.is_empty(), "{}", v::render(&vs));

    let pipeline = spec.pipeline.clone().expect("pipelined");

    // stage vector shorter than the datapath
    let mut bad = spec.clone();
    if let Some(p) = bad.pipeline.as_mut() {
        p.stage_of_node.pop();
    }
    assert!(has_rule(&v::verify_pe(&bad), "PE-PIPE-LEN"));

    // a stage index beyond the declared stage count
    let mut bad = spec.clone();
    if let Some(p) = bad.pipeline.as_mut() {
        p.stage_of_node[0] = p.stages + 3;
    }
    assert!(has_rule(&v::verify_pe(&bad), "PE-PIPE-RANGE"));

    // reversing the stage assignment breaks dataflow monotonicity
    // (only meaningful when the pipeline actually has 2+ stages)
    if pipeline.stages >= 2 {
        let mut bad = spec.clone();
        if let Some(p) = bad.pipeline.as_mut() {
            for s in &mut p.stage_of_node {
                *s = p.stages - 1 - *s;
            }
        }
        assert!(has_rule(&v::verify_pe(&bad), "PE-PIPE-ORDER"));
    }
}

// ----------------------------------------------- map / place / route / bits

struct Backend {
    netlist: apex::map::Netlist,
    rules: apex::rewrite::RuleSet,
    dp: apex::merge::MergedDatapath,
    fabric: apex::cgra::Fabric,
    placement: apex::cgra::Placement,
    routing: apex::cgra::Routing,
    bs: apex::cgra::Bitstream,
}

fn backend() -> Backend {
    let app = apex::apps::gaussian();
    let variant = spec_variant();
    let design = apex::map::map_application(&app.graph, &variant.spec.datapath, &variant.rules)
        .expect("maps");
    let fabric = apex::cgra::Fabric::new(apex::cgra::FabricConfig::default());
    let placement =
        apex::cgra::place(&design.netlist, &fabric, &apex::cgra::PlaceOptions::default())
            .expect("places");
    let routing = apex::cgra::route(
        &design.netlist,
        &variant.rules,
        &fabric,
        &placement,
        &apex::cgra::RouteOptions::default(),
    )
    .expect("routes");
    let bs = apex::cgra::generate_bitstream(
        &design.netlist,
        &variant.rules,
        &variant.spec.datapath,
        &fabric,
        &placement,
        &routing,
    );
    Backend {
        netlist: design.netlist,
        rules: variant.rules,
        dp: variant.spec.datapath,
        fabric,
        placement,
        routing,
        bs,
    }
}

#[test]
fn backend_passes_accept_honest_artifacts() {
    let b = backend();
    for (pass, vs) in [
        ("map", v::verify_netlist(&b.netlist, &b.rules)),
        ("place", v::verify_placement(&b.netlist, &b.fabric, &b.placement)),
        (
            "route",
            v::verify_routing(&b.netlist, &b.rules, &b.fabric, &b.placement, &b.routing),
        ),
        (
            "bits",
            v::verify_bitstream(
                &b.netlist, &b.rules, &b.dp, &b.fabric, &b.placement, &b.routing, &b.bs,
            ),
        ),
    ] {
        assert!(vs.is_empty(), "{pass}:\n{}", v::render(&vs));
    }
}

#[test]
fn map_rejects_out_of_range_rule_reference() {
    let b = backend();
    let mut bad = b.netlist.clone();
    let pe = bad
        .nodes
        .iter_mut()
        .find_map(|n| match &mut n.kind {
            apex::map::NetKind::Pe(inst) => Some(inst),
            _ => None,
        })
        .expect("a PE node exists");
    pe.rule = 9999;
    let vs = v::verify_netlist(&bad, &b.rules);
    assert!(has_rule(&vs, "MAP-NETLIST"), "{}", v::render(&vs));
}

#[test]
fn place_rejects_overloaded_and_misclassed_tiles() {
    let b = backend();
    let pe_nodes: Vec<usize> = b
        .netlist
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n.kind, apex::map::NetKind::Pe(_)))
        .map(|(i, _)| i)
        .collect();
    assert!(pe_nodes.len() >= 2, "gaussian maps to 2+ PEs");

    // two PE nodes on one tile exceeds the PE-slot capacity of 1
    let mut bad = b.placement.clone();
    bad.tile_of_node[pe_nodes[1]] = bad.tile_of_node[pe_nodes[0]];
    let vs = v::verify_placement(&b.netlist, &b.fabric, &bad);
    assert!(has_rule(&vs, "PLACE-CAP"), "{}", v::render(&vs));

    // a PE node on an Io tile is the wrong place class
    let io_tile = (0..b.fabric.len() as u32)
        .map(apex::cgra::TileId)
        .find(|&t| b.fabric.kind(t) == apex::cgra::TileKind::Io)
        .expect("fabric has Io tiles");
    let mut bad = b.placement.clone();
    bad.tile_of_node[pe_nodes[0]] = Some(io_tile);
    let vs = v::verify_placement(&b.netlist, &b.fabric, &bad);
    assert!(has_rule(&vs, "PLACE-CLASS"), "{}", v::render(&vs));
}

#[test]
fn route_rejects_dropped_and_broken_routes() {
    let b = backend();

    // dropping a route desynchronizes the netlist's connection set
    let mut bad = b.routing.clone();
    bad.routes.pop();
    let vs = v::verify_routing(&b.netlist, &b.rules, &b.fabric, &b.placement, &bad);
    assert!(has_rule(&vs, "ROUTE-COUNT"), "{}", v::render(&vs));

    // removing an interior hop breaks path adjacency
    let long = b
        .routing
        .routes
        .iter()
        .position(|r| r.path.len() >= 3)
        .expect("a multi-hop route exists");
    let mut bad = b.routing.clone();
    bad.routes[long].path.remove(1);
    let vs = v::verify_routing(&b.netlist, &b.rules, &b.fabric, &b.placement, &bad);
    assert!(
        has_rule(&vs, "ROUTE-PATH") || has_rule(&vs, "ROUTE-ENDPOINT"),
        "{}",
        v::render(&vs)
    );
}

#[test]
fn bitstream_rejects_missing_crossings_and_bogus_tracks() {
    let b = backend();

    // erase every switchbox config: routed hops lose their crossings
    let mut bad = b.bs.clone();
    for cfgs in bad.tiles.values_mut() {
        cfgs.retain(|c| !matches!(c, apex::cgra::TileConfig::Sb { .. }));
    }
    let vs = v::verify_bitstream(
        &b.netlist, &b.rules, &b.dp, &b.fabric, &b.placement, &b.routing, &bad,
    );
    assert!(has_rule(&vs, "BITS-SB"), "{}", v::render(&vs));

    // a track index past the fabric's channel width is unencodable
    let mut bad = b.bs.clone();
    let mut poisoned = false;
    for cfgs in bad.tiles.values_mut() {
        for c in cfgs.iter_mut() {
            if let apex::cgra::TileConfig::Sb { crossings } = c {
                if let Some(x) = crossings.first_mut() {
                    x.2 = 200;
                    poisoned = true;
                    break;
                }
            }
        }
        if poisoned {
            break;
        }
    }
    assert!(poisoned, "a switchbox crossing exists to poison");
    let vs = v::verify_bitstream(
        &b.netlist, &b.rules, &b.dp, &b.fabric, &b.placement, &b.routing, &bad,
    );
    assert!(has_rule(&vs, "BITS-TRACK"), "{}", v::render(&vs));
}
