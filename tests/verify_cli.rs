//! CLI contract tests for `apex verify`: exit codes (0 clean, 2 usage),
//! the per-pass report format (one `<pass> ok` line per pipeline stage,
//! `[RULE-ID]`-prefixed violation lines, and a machine-greppable summary
//! line), and determinism of the report across runs.

use std::process::Command;

fn apex(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_apex"))
        .args(args)
        .output()
        .expect("apex binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn verify_without_target_is_a_usage_error() {
    let (code, _stdout, stderr) = apex(&["verify"]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
    assert!(
        stderr.contains("expected an application name"),
        "stderr: {stderr}"
    );
}

#[test]
fn verify_rejects_unknown_application() {
    let (code, _stdout, stderr) = apex(&["verify", "no_such_app"]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(
        stderr.contains("unknown application 'no_such_app'"),
        "stderr: {stderr}"
    );
}

#[test]
fn verify_single_app_report_is_golden_shaped() {
    let (code, stdout, stderr) = apex(&["verify", "gaussian"]);
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");

    // header names the application
    assert!(stdout.contains("== gaussian =="), "stdout: {stdout}");

    // one report line per pipeline stage, in flow order
    let passes = [
        "ir", "mine", "merge", "rewrite", "pe", "map", "place", "route", "bitstream",
    ];
    let mut cursor = 0usize;
    for pass in passes {
        let line = stdout
            .lines()
            .enumerate()
            .skip(cursor)
            .find(|(_, l)| l.starts_with(pass))
            .unwrap_or_else(|| panic!("missing '{pass}' line in:\n{stdout}"));
        assert!(
            line.1.contains(" ok"),
            "'{pass}' must be clean on gaussian:\n{stdout}"
        );
        cursor = line.0 + 1;
    }

    // a clean run ends with the all-clean summary and no [RULE-ID] lines
    assert!(
        stdout.contains("verify: 1 application(s), 0 violation(s) — all passes clean"),
        "stdout: {stdout}"
    );
    assert!(
        !stdout.lines().any(|l| l.starts_with('[')),
        "no violation lines expected:\n{stdout}"
    );
}

#[test]
fn verify_report_is_deterministic_across_runs() {
    let (c1, out1, _) = apex(&["verify", "fast"]);
    let (c2, out2, _) = apex(&["verify", "fast"]);
    assert_eq!(c1, 0);
    assert_eq!(c2, 0);
    assert_eq!(out1, out2, "verify output must be byte-identical");
}
