//! Empty stand-in for `rand`.
//!
//! Every crate in the workspace declares `rand` as a dev-dependency but the
//! code rolls its own deterministic xorshift generators and never imports
//! it. The container cannot reach crates.io, so this empty crate satisfies
//! the dependency edge.
