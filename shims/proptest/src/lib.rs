//! Deterministic mini property-testing framework with a `proptest`-shaped
//! API.
//!
//! The build container has no registry access, so the real `proptest` crate
//! cannot be fetched. This shim implements exactly the surface the
//! workspace's test suites use — `proptest!` with `#![proptest_config(...)]`,
//! `pat in strategy` and `ident: ty` parameters, integer-range / tuple /
//! `prop::collection::vec` / `prop_map` strategies, and the `prop_assert*`
//! macros — over a deterministic splitmix64 generator, so test runs are
//! reproducible. Shrinking is intentionally not implemented: failures report
//! the case number, which replays identically.

pub mod test_runner {
    /// Deterministic per-case random source (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream depends only on the case index.
        pub fn deterministic(case: u64) -> Self {
            TestRng {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Run configuration: only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // the real default is 256; 64 keeps heavyweight suites fast
            // while still exercising varied inputs
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod arbitrary {
    use crate::test_runner::TestRng;

    /// Types with a canonical generation strategy (`any::<T>()` / `x: T`
    /// parameter shorthand).
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy of [`Arbitrary`] values; built by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as u64).saturating_sub(self.start as u64);
                    assert!(span > 0, "empty range strategy");
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as u64) - (*self.start() as u64) + 1;
                    self.start() + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for [`vec`] (inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirrors `proptest::prop` (the module-tree re-export used as
/// `prop::collection::vec(...)`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Binds `proptest!` parameters inside a generated test body. Supports
/// `pat in strategy` and the `ident: Type` (= `any::<Type>()`) shorthand,
/// in any order, with an optional trailing comma.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $id:ident : $ty:ty, $($rest:tt)*) => {
        let $id: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $id:ident : $ty:ty) => {
        let $id: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
    };
}

/// Emits one `#[test]` function per property, running it over `cases`
/// deterministically-seeded inputs.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        #[allow(unreachable_code)]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(u64::from(__case));
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        $crate::__proptest_bind!(__rng, $($params)*);
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!("proptest case {}/{}: {}", __case, __config.cases, __msg);
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// The `proptest!` entry point: an optional `#![proptest_config(...)]`
/// followed by one or more `#[test] fn name(params) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`", l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`", l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u16..256, 3..8);
        let mut r1 = crate::test_runner::TestRng::deterministic(7);
        let mut r2 = crate::test_runner::TestRng::deterministic(7);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u16..9, y: u8, v in prop::collection::vec(0u32..4, 2..5)) {
            prop_assert!((3..9).contains(&x));
            let _ = y;
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for e in v {
                prop_assert!(e < 4, "element {e} out of range");
            }
        }

        #[test]
        fn tuples_and_map_compose(t in (0u8..5, any::<u16>(), any::<u16>(), any::<bool>())) {
            let mapped = (0u8..5).prop_map(|v| u32::from(v) * 2);
            use crate::strategy::Strategy;
            let mut rng = crate::test_runner::TestRng::deterministic(u64::from(t.1));
            prop_assert!(mapped.generate(&mut rng) < 10);
            prop_assert!(t.0 < 5);
            if t.3 {
                return Ok(());
            }
            prop_assert_ne!(t.0, 99);
        }
    }
}
