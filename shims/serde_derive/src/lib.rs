//! No-op stand-in for `serde_derive`.
//!
//! The build container has no registry access, so the real crate cannot be
//! fetched. The workspace only uses `#[derive(Serialize, Deserialize)]` as
//! forward-looking annotations — nothing serializes through serde yet (JSON
//! output is hand-rolled) — so empty derives keep every annotation compiling
//! without generating code.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
