//! Minimal offline stand-in for `serde`.
//!
//! The workspace annotates types with `#[derive(Serialize, Deserialize)]`
//! for future wire formats but performs no serde-based serialization today
//! (JSON emission is hand-rolled). This shim provides the two trait names
//! and no-op derive macros so those annotations compile without network
//! access to crates.io.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods; the no-op derive
/// generates no impl and nothing in the workspace requires one).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods).
pub trait Deserialize<'de> {}
