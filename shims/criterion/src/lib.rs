//! Minimal offline stand-in for `criterion`.
//!
//! The container cannot reach crates.io, so the real harness is
//! unavailable. This shim keeps the workspace's `harness = false` benches
//! compiling and running: it executes each benchmark closure a bounded
//! number of times within the configured measurement window and prints
//! mean wall-clock time per iteration. No statistics, plots, or baselines.
//!
//! One extension over plain printing: when `APEX_BENCH_JSON` names a
//! file, every completed benchmark is also recorded and flushed there as
//! a JSON array at `final_summary()`, so CI can check in perf baselines
//! (`BENCH_seed.json`) and upload a machine-readable trajectory artifact
//! without parsing stdout.

use std::hint;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Completed results, collected for the optional JSON dump.
static RESULTS: Mutex<Vec<(String, f64, u64)>> = Mutex::new(Vec::new());

fn record(name: &str, mean_ns: f64, iters: u64) {
    if let Ok(mut r) = RESULTS.lock() {
        r.push((name.to_owned(), mean_ns, iters));
    }
}

/// Writes collected results as JSON to `APEX_BENCH_JSON`, if set.
/// Best-effort: an unwritable path must not fail the bench run.
fn flush_json() {
    let Ok(path) = std::env::var("APEX_BENCH_JSON") else {
        return;
    };
    if path.trim().is_empty() {
        return;
    }
    let Ok(results) = RESULTS.lock() else { return };
    let mut out = String::from("[\n");
    for (i, (name, mean_ns, iters)) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        // bench names are crate-internal identifiers: escape the two
        // characters that could break the JSON, nothing else appears
        let esc: String = name.chars().flat_map(char::escape_debug).collect();
        out.push_str(&format!(
            "  {{\"name\": \"{esc}\", \"mean_ns\": {mean_ns:.1}, \"iters\": {iters}}}"
        ));
    }
    out.push_str("\n]\n");
    if std::fs::write(&path, out).is_err() {
        eprintln!("criterion shim: cannot write {path}");
    }
}

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, 10, Duration::from_secs(3), f);
        self
    }

    /// Flushes the JSON dump (`APEX_BENCH_JSON`); mirrors the real
    /// harness's end-of-run summary hook.
    pub fn final_summary(&self) {
        flush_json();
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, self.measurement_time, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, budget: Duration, mut f: F) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    let start = Instant::now();
    for _ in 0..samples {
        f(&mut b);
        if start.elapsed() > budget {
            break;
        }
    }
    let mean_ns = if b.iters == 0 {
        0.0
    } else {
        b.total.as_nanos() as f64 / b.iters as f64
    };
    println!("bench {name}: {:.1} us/iter ({} iters)", mean_ns / 1e3, b.iters);
    record(name, mean_ns, b.iters);
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times one call of `routine` (the real crate loops adaptively; one
    /// call per sample keeps heavyweight flows bounded).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let t = Instant::now();
        black_box(routine());
        self.total += t.elapsed();
        self.iters += 1;
    }
}

/// Declares a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for `harness = false` benches, mirroring
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}
